"""Performance attribution: where did the simulated time go?

:func:`profile_run` folds one run's deterministic span tree together
with its measured :class:`~repro.gpusim.counters.AccessCounters`,
``PruneStats``/``CellStats`` and ``ClusterTiming`` into a hierarchical
attribution report:

* **Layer attribution** — every span's *own* simulated cost
  (``cost_us``, before children) is charged to exactly one engine layer
  (launch/worker/block dispatch, tile and intra evaluation,
  reduce/merge, crash recovery, cell indexing, cluster striping).  The
  total equals the sum over all spans by construction, so the report is
  *conservation-checked*: layer shares must sum to the run total ±ε and
  the ``other`` bucket must stay empty — a span name the profiler does
  not recognize is a wiring bug, and tests enforce it.
* **Roofline placement** — arithmetic intensity from the measured
  ledger (FLOPs per byte moved per memory space) against the
  :class:`~repro.gpusim.spec.DeviceSpec` peak rates, labelling the run
  memory- or compute-bound exactly the way Elsen et al. frame N-body
  GPU kernels.  The declared FLOP model is ``3*dims + 2`` per evaluated
  pair (subtract + square + accumulate per dimension, then sqrt + bin),
  and evaluated pairs are derived *from the attribution itself*
  (evaluation µs / ``US_PER_PAIR``) so pruning and cell skipping are
  reflected.
* **Run-seconds decomposition** — the simulated-seconds view across
  subsystems: kernel compute, cluster merge/transfers, checkpoint I/O
  (persisted bytes priced at :data:`CHECKPOINT_BANDWIDTH`), retry
  backoff and straggler wait (the delays the resilience supervisor
  recorded).
* **Avoided work** — the pair evaluations pruning and the cell grid
  skipped, priced in the same µs currency, so "time not spent" is
  visible next to time spent.  Classification itself (bounds intervals,
  cell indexing) is free in the simulated cost model; its real cost is
  the avoided-work ledger's honesty, documented in DESIGN.md §13.

Like the Chrome exporter, :meth:`ProfileReport.to_json` is canonical:
sorted keys, fixed separators, fixed rounding, no wall-clock values —
byte-identical per run configuration.  Wall-clock context (measured run
seconds, simulated-vs-wall ratio) is opt-in via ``include_wall`` and in
the human table only.

:func:`measured_costs` is the measured-cost API the future ``repro
tune`` search loop consults: a flat ``{layer: simulated_µs}`` dict.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..gpusim.counters import MemSpace
from ..gpusim.spec import DeviceSpec, TITAN_X
from .tracer import US_PER_PAIR, NullTracer

#: Profile report schema stamp.
PROFILE_SCHEMA = "repro-profile-v1"

#: Simulated checkpoint-store bandwidth (bytes/sec) used to price
#: durable chunk I/O in the run-seconds decomposition — a declared
#: constant (local NVMe class), same philosophy as the per-pair span
#: cost: an arbitrary but fixed pure function of the bytes moved.
CHECKPOINT_BANDWIDTH = 1e9

#: FLOPs charged per evaluated pair: per dimension one subtract, one
#: square, one accumulate (3*dims), plus sqrt + bin update (2).
FLOPS_PER_PAIR_BASE = 2
FLOPS_PER_PAIR_PER_DIM = 3

#: Span name → engine layer.  Every span the engine emits must map here
#: (or under a prefix rule below); the tests pin ``other == 0``.
_LAYER_BY_NAME = {
    "launch": "launch",
    "worker": "worker-dispatch",
    "block": "block-dispatch",
    "tile": "tile-eval",
    "tile-batch": "tile-eval",
    "mega": "tile-eval",
    "intra": "intra-eval",
    "merge": "reduce-merge",
    "reduce-output": "reduce-merge",
    "finalize-pairs": "reduce-merge",
    "recovery": "recovery",
    "cell-index": "cell-index",
}

#: Memory spaces that participate in the roofline (REGISTER is free and
#: CONSTANT aliases the ROC path in the spec's bandwidth table).
_ROOFLINE_SPACES = (
    MemSpace.GLOBAL, MemSpace.L2, MemSpace.ROC, MemSpace.SHARED,
)

#: Deterministic tie-break order for the binding resource.
_BINDING_ORDER = ("compute", "global", "l2", "roc", "shared")


def layer_for_span(name: str) -> str:
    """The engine layer a span name is charged to ("other" = unmapped)."""
    layer = _LAYER_BY_NAME.get(name)
    if layer is not None:
        return layer
    if name.startswith("cluster:"):
        return "cluster"
    return "other"


def _r(value: float, digits: int = 6) -> float:
    """Fixed rounding so serialized floats are platform-stable."""
    return round(float(value), digits)


@dataclass
class ProfileReport:
    """One run's attribution report (see the module docstring)."""

    kernel: str
    n: int
    dims: int
    backend: Optional[str]
    device: str
    total_us: float
    layers: Dict[str, Dict[str, Any]]
    pairs_evaluated: float
    roofline: Dict[str, Any]
    run_seconds: Dict[str, float]
    avoided: Dict[str, float]
    conservation: Dict[str, float]
    wall_seconds: Optional[float] = None
    manifest: Dict[str, Any] = field(default_factory=dict)

    # -- the measured-cost API (``repro tune`` consults this) ---------------
    def layer_costs(self) -> Dict[str, float]:
        """Flat ``{layer: simulated_µs}`` — the tuner's cost source."""
        return {name: info["us"] for name, info in self.layers.items()}

    # -- serialization -------------------------------------------------------
    def to_dict(self, *, include_wall: bool = False) -> Dict[str, Any]:
        """Plain-dict view.  ``include_wall=False`` (the default) keeps
        the output a pure function of the run configuration — wall
        seconds vary per host and would break byte-identity."""
        out: Dict[str, Any] = {
            "schema": PROFILE_SCHEMA,
            "kernel": self.kernel,
            "n": int(self.n),
            "dims": int(self.dims),
            "backend": self.backend,
            "device": self.device,
            "total_us": _r(self.total_us),
            "layers": {
                name: {
                    "us": _r(info["us"]),
                    "share": _r(info["share"]),
                    "spans": int(info["spans"]),
                }
                for name, info in sorted(self.layers.items())
            },
            "pairs_evaluated": _r(self.pairs_evaluated),
            "roofline": _jsonable_rounded(self.roofline),
            "run_seconds": {k: _r(v, 9) for k, v in sorted(self.run_seconds.items())},
            "avoided": {k: _r(v) for k, v in sorted(self.avoided.items())},
            "conservation": {k: _r(v) for k, v in sorted(self.conservation.items())},
        }
        if self.manifest:
            out["manifest"] = self.manifest
        if include_wall and self.wall_seconds is not None:
            out["wall"] = {
                "seconds": self.wall_seconds,
                "sim_vs_wall": (
                    (self.total_us * 1e-6) / self.wall_seconds
                    if self.wall_seconds > 0 else None
                ),
            }
        return out

    def to_json(self, *, include_wall: bool = False) -> str:
        """Canonical serialization — deterministic bytes per config."""
        return json.dumps(
            self.to_dict(include_wall=include_wall),
            sort_keys=True,
            separators=(",", ":"),
        ) + "\n"

    def render(self) -> str:
        """Aligned human table (may include wall context)."""
        lines: List[str] = []
        lines.append(
            f"profile: {self.kernel}  n={self.n}  backend={self.backend}"
        )
        lines.append(f"device:  {self.device}")
        lines.append("")
        lines.append(f"{'layer':<16} {'sim µs':>14} {'share':>8} {'spans':>7}")
        ordered = sorted(
            self.layers.items(), key=lambda kv: (-kv[1]["us"], kv[0])
        )
        for name, info in ordered:
            lines.append(
                f"{name:<16} {info['us']:>14.2f} {info['share']:>7.1%} "
                f"{info['spans']:>7d}"
            )
        lines.append(
            f"{'total':<16} {self.total_us:>14.2f} {1.0:>7.1%} "
            f"{sum(i['spans'] for i in self.layers.values()):>7d}"
        )
        lines.append("")
        roof = self.roofline
        lines.append(
            f"roofline: {roof['bound']}-bound on {roof['binding']} "
            f"(pairs evaluated {self.pairs_evaluated:,.0f}, "
            f"{roof['flops']:,.0f} flops)"
        )
        for space, placement in sorted(roof["spaces"].items()):
            lines.append(
                f"  {space:<8} AI {placement['intensity']:>10.3f} flop/B"
                f"  ridge {placement['ridge']:>10.3f}"
                f"  t {placement['seconds']:.3e} s"
            )
        lines.append(f"  compute  t {roof['compute_seconds']:.3e} s")
        if any(self.run_seconds.values()):
            lines.append("")
            lines.append("run seconds (simulated):")
            for key in sorted(self.run_seconds):
                val = self.run_seconds[key]
                if val:
                    lines.append(f"  {key:<20} {val:.6g}")
        if any(self.avoided.values()):
            lines.append("")
            lines.append("avoided work:")
            for key in sorted(self.avoided):
                val = self.avoided[key]
                if val:
                    lines.append(f"  {key:<24} {val:,.6g}")
        if self.wall_seconds is not None:
            lines.append("")
            lines.append(
                f"wall: {self.wall_seconds:.3f} s "
                f"(simulated {self.total_us * 1e-6:.6f} s)"
            )
        return "\n".join(lines)


def _jsonable_rounded(roofline: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "bound": roofline["bound"],
        "binding": roofline["binding"],
        "flops": _r(roofline["flops"]),
        "flops_per_pair": int(roofline["flops_per_pair"]),
        "peak_flops": _r(roofline["peak_flops"]),
        "compute_seconds": _r(roofline["compute_seconds"], 12),
        "spaces": {},
    }
    for space, placement in sorted(roofline["spaces"].items()):
        out["spaces"][space] = {
            "bytes": int(placement["bytes"]),
            "intensity": _r(placement["intensity"]),
            "ridge": _r(placement["ridge"]),
            "seconds": _r(placement["seconds"], 12),
        }
    return out


def attribute_spans(spans: List[Any]) -> Dict[str, Dict[str, Any]]:
    """Charge each span's own cost to its layer.

    Instants carry zero cost and are not counted; a zero-cost *span*
    still counts toward its layer's span tally (``cell-index``,
    ``cluster:node*`` — structural layers that are free in the
    simulated cost model).
    """
    layers: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        if span.kind != "span":
            continue
        layer = layer_for_span(span.name)
        info = layers.setdefault(layer, {"us": 0.0, "spans": 0})
        info["us"] += float(span.cost_us)
        info["spans"] += 1
    return layers


def roofline_placement(
    *,
    pairs: float,
    dims: int,
    counters: Any,
    spec: DeviceSpec,
) -> Dict[str, Any]:
    """Place one run on the roofline: the binding resource is whichever
    of peak-rate compute or per-space memory traffic needs the most
    time; ties break deterministically compute-first."""
    flops_per_pair = FLOPS_PER_PAIR_PER_DIM * int(dims) + FLOPS_PER_PAIR_BASE
    flops = float(pairs) * flops_per_pair
    peak_flops = spec.peak_lane_cycles_per_sec
    compute_seconds = flops / peak_flops
    times: Dict[str, float] = {"compute": compute_seconds}
    spaces: Dict[str, Dict[str, float]] = {}
    for space in _ROOFLINE_SPACES:
        traffic = counters.bytes_for(space) if counters is not None else 0
        if not traffic:
            continue
        bandwidth = spec.bandwidth_for(space)
        seconds = traffic / bandwidth
        times[space.value] = seconds
        spaces[space.value] = {
            "bytes": int(traffic),
            "seconds": seconds,
            "intensity": flops / traffic,
            "ridge": peak_flops / bandwidth,
        }
    binding = max(
        _BINDING_ORDER,
        key=lambda k: (times.get(k, float("-inf")), -_BINDING_ORDER.index(k)),
    )
    return {
        "bound": "compute" if binding == "compute" else "memory",
        "binding": binding,
        "flops": flops,
        "flops_per_pair": flops_per_pair,
        "peak_flops": peak_flops,
        "compute_seconds": compute_seconds,
        "spaces": spaces,
    }


def _decompose_run_seconds(res: Any) -> Dict[str, float]:
    """The simulated-seconds decomposition across subsystems."""
    out = {
        "kernel_compute": 0.0,
        "cluster_merge": 0.0,
        "cluster_node_max": 0.0,
        "checkpoint_io": 0.0,
        "retry_backoff": 0.0,
        "straggler_wait": 0.0,
    }
    report = getattr(res, "report", None)
    if report is not None:
        out["kernel_compute"] = float(report.seconds)
    cluster = getattr(res, "cluster", None)
    if cluster is not None:
        out["cluster_merge"] = float(cluster.merge_seconds)
        if cluster.node_seconds:
            out["cluster_node_max"] = float(max(cluster.node_seconds.values()))
    resilience = getattr(res, "resilience", None)
    if resilience is not None:
        for event in resilience.events:
            delay = event.data.get("delay")
            if delay is None:
                continue
            if event.action in ("heartbeat-timeout", "straggler"):
                out["straggler_wait"] += float(delay)
            else:
                out["retry_backoff"] += float(delay)
        checkpoint_bytes = 0
        for event in getattr(resilience, "lifecycle", ()):
            if event.action in ("checkpoint-write", "checkpoint-load"):
                checkpoint_bytes += int(event.data.get("bytes", 0))
        out["checkpoint_io"] = checkpoint_bytes / CHECKPOINT_BANDWIDTH
    return out


def _avoided_work(res: Any) -> Dict[str, float]:
    """Pair evaluations classification skipped, priced in span µs."""
    out: Dict[str, float] = {}
    record = getattr(res, "record", None)
    prune = getattr(record, "prune", None) if record is not None else None
    if prune is not None:
        out["prune_pairs_skipped"] = float(prune.pairs_skipped)
        out["prune_pairs_bulk"] = float(prune.pairs_bulk)
        out["prune_saved_us"] = float(prune.pairs_skipped) * US_PER_PAIR
    cells = getattr(record, "cells", None) if record is not None else None
    if cells is not None:
        out["cells_pairs_skipped"] = float(cells.pairs_skipped)
        out["cells_saved_us"] = float(cells.pairs_skipped) * US_PER_PAIR
    return out


def profile_run(
    res: Any,
    *,
    spec: Optional[DeviceSpec] = None,
    wall_seconds: Optional[float] = None,
) -> ProfileReport:
    """Build the attribution report for one traced run outcome (a
    :class:`~repro.core.runner.RunResult` or anything shaped like one).

    Requires a live trace — the span tree *is* the attribution source;
    run with ``trace=True`` (CLI ``repro profile`` does)."""
    trace = getattr(res, "trace", None)
    if trace is None or isinstance(trace, NullTracer) or not getattr(
        trace, "roots", None
    ):
        raise ValueError(
            "profile_run needs a traced run: pass run(trace=True) "
            "(or repro profile, which enables tracing itself)"
        )
    if spec is None:
        spec = TITAN_X
    spans = trace.all_spans()
    layers = attribute_spans(spans)
    # the run total is summed over the *tree*, the layers over the
    # attribution — conservation means the two agree (and they can only
    # disagree if a costed span was skipped, e.g. a costed instant)
    total_us = sum(float(s.cost_us) for s in spans)
    for info in layers.values():
        info["share"] = info["us"] / total_us if total_us else 0.0

    eval_us = (
        layers.get("tile-eval", {}).get("us", 0.0)
        + layers.get("intra-eval", {}).get("us", 0.0)
    )
    pairs_evaluated = eval_us / US_PER_PAIR

    manifest = dict(getattr(res, "manifest", None) or {})
    record = getattr(res, "record", None)
    report = getattr(res, "report", None)
    counters = None
    if record is not None:
        counters = record.counters
    elif report is not None:
        counters = report.counters
    kernel = getattr(res, "kernel", None)
    problem = getattr(kernel, "problem", None)
    dims = int(
        getattr(problem, "dims", 0)
        or manifest.get("problem", {}).get("dims", 0)
        or 3
    )
    roofline = roofline_placement(
        pairs=pairs_evaluated, dims=dims, counters=counters, spec=spec,
    )
    attributed = sum(info["us"] for info in layers.values())
    return ProfileReport(
        kernel=(
            getattr(kernel, "name", None)
            or manifest.get("kernel", {}).get("name")
            or (report.kernel if report is not None else "?")
        ),
        n=int(manifest.get("n") or getattr(report, "n", 0) or 0),
        dims=dims,
        backend=manifest.get("backend"),
        device=spec.name,
        total_us=total_us,
        layers=layers,
        pairs_evaluated=pairs_evaluated,
        roofline=roofline,
        run_seconds=_decompose_run_seconds(res),
        avoided=_avoided_work(res),
        conservation={
            "total_us": total_us,
            "attributed_us": attributed,
            "other_us": layers.get("other", {}).get("us", 0.0),
            "error_us": abs(total_us - attributed),
        },
        wall_seconds=wall_seconds,
        manifest=manifest,
    )


def measured_costs(res: Any, **kwargs: Any) -> Dict[str, float]:
    """The flat per-layer simulated-µs dict ``repro tune`` will consult."""
    return profile_run(res, **kwargs).layer_costs()
