"""Per-run manifests: every benchmark number gets an attribution record.

A manifest captures everything needed to re-run (and trust) one execution:
the problem and kernel configuration, the simulated device, the
calibration constants, engine knobs, fault seed, and the repo state
(``git describe``).  It deliberately contains **no wall-clock timestamp**
— manifests ride inside exported traces, and traces must stay
byte-identical across reruns of the same configuration.
"""

from __future__ import annotations

import dataclasses
import functools
import platform
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

#: Manifest schema version.
MANIFEST_SCHEMA = "repro-manifest-v1"

_REPO_ROOT = Path(__file__).resolve().parents[3]


@functools.lru_cache(maxsize=1)
def git_describe() -> str:
    """``git describe --always --dirty`` of the repo, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=_REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def _as_plain(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _as_plain(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _as_plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_as_plain(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _fault_seed(faults: Any) -> Optional[int]:
    """The seed behind a ``faults=`` argument (int, plan or injector)."""
    if faults is None:
        return None
    if isinstance(faults, int):
        return faults
    plan = getattr(faults, "plan", faults)
    seed = getattr(plan, "seed", None)
    return int(seed) if seed is not None else None


def build_manifest(
    *,
    problem: Any = None,
    kernel: Any = None,
    spec: Any = None,
    calib: Any = None,
    n: Optional[int] = None,
    workers: Optional[int] = None,
    batch_tiles: Optional[int] = None,
    backend: Optional[str] = None,
    prune: bool = False,
    cells: bool = False,
    faults: Any = None,
    retries: Any = None,
    cluster: Any = None,
) -> Dict[str, Any]:
    """Assemble the deterministic attribution record for one run."""
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "git": git_describe(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": sys.platform,
        "n": n,
        "workers": workers,
        "batch_tiles": batch_tiles,
        # the *resolved* engine name (callers resolve env/auto first) so
        # two runs with the same manifest really ran the same engine —
        # never a pid, worker count realization, or any wall-clock value
        "backend": backend,
        "prune": bool(prune),
        "cells": bool(cells),
        "fault_seed": _fault_seed(faults),
    }
    if retries is not None:
        manifest["retries"] = _as_plain(
            retries if isinstance(retries, int)
            else getattr(retries, "max_retries", repr(retries))
        )
    if cluster is not None:
        # the declared simulated cluster (nodes/topology/link model) —
        # everything that shapes the stripe plan and the merge schedule
        manifest["cluster"] = _as_plain(
            cluster.descriptor() if hasattr(cluster, "descriptor")
            else cluster
        )
    if problem is not None:
        manifest["problem"] = {
            "name": problem.name,
            "dims": problem.dims,
            "output_kind": problem.output.kind.value,
        }
    if kernel is not None:
        manifest["kernel"] = {
            "name": kernel.name,
            "input": kernel.input.name,
            "output": kernel.output.name,
            "block_size": kernel.block_size,
            "load_balanced": bool(kernel.load_balanced),
            "prune": bool(getattr(kernel, "prune", False)),
            "cells": bool(getattr(kernel, "cells", False)),
        }
    if spec is not None:
        manifest["device"] = {
            "name": spec.name,
            "sm_count": spec.sm_count,
            "cores_per_sm": spec.cores_per_sm,
            "clock_hz": spec.clock_hz,
            "shared_mem_per_block": spec.shared_mem_per_block,
        }
    if calib is not None:
        manifest["calibration"] = _as_plain(calib)
    return manifest
