"""One queryable view over every number the engine produces.

A :class:`MetricsRegistry` aggregates the quantities that previously lived
in four unrelated objects — :class:`~repro.gpusim.counters.AccessCounters`
(functional traffic), :class:`~repro.core.bounds.PruneStats` (tile
pruning), :class:`~repro.gpusim.profiler.SimReport` (simulated timing,
occupancy, utilization) and the resilience flight recorder — into flat
counter/gauge/histogram namespaces with deterministic serialization.

The registry is also *round-trippable* back into the profiler's
paper-table renderers: :meth:`MetricsRegistry.sim_report` rebuilds a
:class:`~repro.gpusim.profiler.SimReport` from the stored gauges, so
``repro stats`` prints Tables II/IV from the very same registry a trace
was built from.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..gpusim.counters import AccessCounters, MemSpace
from ..gpusim.profiler import SimReport


class MetricsRegistry:
    """Flat, deterministic counters / gauges / histograms / labels."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, List[float]] = {}
        self.labels: Dict[str, str] = {}

    # -- primitive instruments ----------------------------------------------
    def inc(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(value)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        self.histograms.setdefault(name, []).append(float(value))

    def set_label(self, name: str, value: str) -> None:
        self.labels[name] = str(value)

    def counter_value(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        return self.gauges.get(name, default)

    # -- ingesters -----------------------------------------------------------
    def ingest_access_counters(self, counters: AccessCounters) -> None:
        """Fold a functional launch ledger into ``mem.*`` counters."""
        for kind, table in (
            ("reads", counters.reads),
            ("writes", counters.writes),
            ("atomics", counters.atomics),
        ):
            for space, n in table.items():
                if n:
                    self.inc(f"mem.{kind}.{space.value}", n)
        if counters.atomic_conflict_issues:
            self.set_gauge(
                "mem.conflict_degree", counters.mean_conflict_degree()
            )
        if counters.faults_injected:
            self.inc("fault.injected", counters.faults_injected)
        if counters.recoveries:
            self.inc("fault.recoveries", counters.recoveries)

    def ingest_prune(self, stats: Any) -> None:
        """Fold a :class:`~repro.core.bounds.PruneStats` into ``prune.*``."""
        self.inc("prune.tiles", stats.tiles)
        self.inc("prune.tiles_skipped", stats.tiles_skipped)
        self.inc("prune.tiles_bulk", stats.tiles_bulk)
        self.inc("prune.pairs_skipped", stats.pairs_skipped)
        self.inc("prune.pairs_bulk", stats.pairs_bulk)
        self.inc("prune.tile_points_pruned", stats.tile_points_pruned)
        self.set_gauge("prune.fraction", stats.prune_fraction)

    def ingest_cells(self, stats: Any) -> None:
        """Fold a :class:`~repro.core.cells.CellStats` into ``cells.*`` —
        grid shape as gauges, work aggregates as counters, and the
        occupancy distribution into the histogram namespace."""
        self.set_gauge("cells.total", float(stats.cells))
        self.set_gauge("cells.occupied", float(stats.cells_occupied))
        self.set_gauge("cells.max_occupancy", float(stats.max_occupancy))
        self.set_gauge("cells.mean_occupancy", stats.mean_occupancy)
        self.inc("cells.tiles", stats.tiles)
        self.inc("cells.tiles_examined", stats.tiles_examined)
        self.inc("cells.tiles_skipped", stats.tiles_skipped)
        self.inc("cells.pairs", stats.pairs)
        self.inc("cells.pairs_examined", stats.pairs_examined)
        self.inc("cells.pairs_skipped", stats.pairs_skipped)
        self.inc("cells.residual_folds", stats.residual_folds)
        self.set_gauge("cells.examined_fraction", stats.examined_fraction)
        # occupancy_hist is (occupancy, cell count) pairs
        for occupancy, count in stats.occupancy_hist:
            self.observe("cells.occupancy", float(occupancy))
            self.inc(f"cells.occupancy.{int(occupancy)}", int(count))

    def ingest_sim_report(self, report: SimReport) -> None:
        """Fold the analytical view: timing, occupancy, utilization,
        achieved bandwidth, model extras — plus the measured counters the
        runner spliced in, when present."""
        self.set_label("kernel", report.kernel)
        self.set_label("dominant", report.dominant)
        self.set_gauge("sim.n", float(report.n))
        self.set_gauge("sim.seconds", report.seconds)
        self.set_gauge("sim.occupancy", report.occupancy)
        for pipe, util in report.utilization.items():
            self.set_gauge(f"util.{pipe}", util)
        for space, bw in report.achieved_bandwidth.items():
            self.set_gauge(f"bandwidth.{space}", bw)
        for key, val in report.extras.items():
            self.set_gauge(f"model.{key}", val)
        if report.counters is not None:
            self.ingest_access_counters(report.counters)

    def ingest_cluster(self, timing: Any) -> None:
        """Fold a :class:`~repro.core.cluster.ClusterTiming` into the
        ``cluster.*`` namespace: the communication cost model, per-node
        simulated compute as gauges, link traffic as counters."""
        self.set_gauge("cluster.nodes", float(timing.nodes))
        self.set_gauge("cluster.seconds", timing.seconds)
        self.set_gauge("cluster.merge_seconds", timing.merge_seconds)
        self.inc("cluster.transfers", timing.transfers)
        self.inc("cluster.bytes_moved", int(timing.bytes_moved))
        self.inc("cluster.link_retries", timing.link_retries)
        for node in sorted(timing.node_seconds):
            self.set_gauge(
                f"cluster.node.{node}.seconds", timing.node_seconds[node]
            )

    def ingest_resilience(self, report: Any) -> None:
        """Fold a resilience flight recorder: one counter per fault kind
        and recovery action, delays into a histogram."""
        if report.seed is not None:
            self.set_gauge("fault.seed", float(report.seed))
        for fault in report.faults:
            self.inc(f"fault.{fault.kind.value}")
        for event in report.events:
            self.inc(f"recovery.{event.action}")
            delay = event.data.get("delay")
            if delay is not None:
                self.observe("recovery.delay_seconds", delay)
        for event in getattr(report, "lifecycle", ()):
            self.inc(f"lifecycle.{event.action}")

    # -- composition ---------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (returns ``self``).

        Composition semantics per namespace: counters *add* (they are
        extensive — per-node ``cluster.*`` or per-worker ``mem.*``
        counters must sum to the single-run totals), histograms
        *concatenate*, and gauges/labels are *last-writer-wins* (they are
        intensive — occupancy, utilization, the current kernel name —
        where summing would be meaningless)."""
        for name, value in other.counters.items():
            self.inc(name, value)
        for name, values in other.histograms.items():
            self.histograms.setdefault(name, []).extend(values)
        self.gauges.update(other.gauges)
        self.labels.update(other.labels)
        return self

    # -- views ---------------------------------------------------------------
    def sim_report(self) -> SimReport:
        """Rebuild a :class:`SimReport` from the stored gauges/labels, so
        the profiler's paper-table renderers can be driven straight from
        the registry."""
        utilization = {
            name[len("util."):]: value
            for name, value in self.gauges.items()
            if name.startswith("util.")
        }
        bandwidth = {
            name[len("bandwidth."):]: value
            for name, value in self.gauges.items()
            if name.startswith("bandwidth.")
        }
        extras = {
            name[len("model."):]: value
            for name, value in self.gauges.items()
            if name.startswith("model.")
        }
        return SimReport(
            kernel=self.labels.get("kernel", "?"),
            n=int(self.gauge_value("sim.n")),
            seconds=self.gauge_value("sim.seconds"),
            occupancy=self.gauge_value("sim.occupancy"),
            dominant=self.labels.get("dominant", "?"),
            utilization=utilization,
            achieved_bandwidth=bandwidth,
            extras=extras,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic plain-dict snapshot (sorted keys, histograms
        summarized) — what the JSON surfaces serialize."""
        hist = {}
        for name in sorted(self.histograms):
            values = self.histograms[name]
            hist[name] = {
                "count": len(values),
                "min": min(values),
                "max": max(values),
                "sum": sum(values),
            }
        return {
            "labels": dict(sorted(self.labels.items())),
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": hist,
        }

    def render(self) -> str:
        """Aligned text view of the whole registry."""
        lines: List[str] = []
        if self.labels:
            lines.append("labels:")
            width = max(len(k) for k in self.labels)
            for k in sorted(self.labels):
                lines.append(f"  {k:<{width}}  {self.labels[k]}")
        if self.counters:
            lines.append("counters:")
            width = max(len(k) for k in self.counters)
            for k in sorted(self.counters):
                lines.append(f"  {k:<{width}}  {self.counters[k]:,}")
        if self.gauges:
            lines.append("gauges:")
            width = max(len(k) for k in self.gauges)
            for k in sorted(self.gauges):
                lines.append(f"  {k:<{width}}  {self.gauges[k]:.6g}")
        if self.histograms:
            lines.append("histograms:")
            width = max(len(k) for k in self.histograms)
            for k in sorted(self.histograms):
                v = self.histograms[k]
                lines.append(
                    f"  {k:<{width}}  count={len(v)} min={min(v):.6g} "
                    f"max={max(v):.6g} sum={sum(v):.6g}"
                )
        return "\n".join(lines)


def collect_metrics(res: Any) -> MetricsRegistry:
    """Build the registry for one run outcome (a
    :class:`~repro.core.runner.RunResult` or anything shaped like one)."""
    registry = MetricsRegistry()
    report = getattr(res, "report", None)
    if report is not None:
        registry.ingest_sim_report(report)
    record = getattr(res, "record", None)
    if record is not None:
        if report is None or report.counters is not record.counters:
            registry.ingest_access_counters(record.counters)
        registry.set_gauge("engine.workers", float(record.workers))
        registry.inc("engine.blocks_run", record.blocks_run)
        prune = getattr(record, "prune", None)
        if prune is not None:
            registry.ingest_prune(prune)
        cells = getattr(record, "cells", None)
        if cells is not None:
            registry.ingest_cells(cells)
    resilience = getattr(res, "resilience", None)
    if resilience is not None:
        registry.ingest_resilience(resilience)
    cluster = getattr(res, "cluster", None)
    if cluster is not None:
        registry.ingest_cluster(cluster)
    return registry
