"""Deterministic execution tracing: nested spans and typed instant events.

The tracer answers "what did the engine *do*" the way ``nvprof``'s timeline
answers it for a real GPU: a launch opens a span, workers and blocks nest
under it, tile batches nest under blocks, faults and recovery actions land
as instant events at the point they fired.  Two properties make it safe to
run everywhere:

* **Determinism.**  No wall-clock value ever enters a span.  Timestamps
  are assigned at *export* time from simulated work (a fixed cost per pair
  evaluation plus small per-structure overheads), and children are laid
  out in a canonical ``(phase, key, seq)`` order, so the emitted trace is
  byte-identical for a fixed run configuration no matter how the host OS
  schedules the simulator's worker threads.
* **Zero hot-path cost by default.**  :data:`NULL_TRACER` (a
  :class:`NullTracer`) is the default everywhere; every hook is guarded by
  ``tracer.enabled`` so the disabled path performs no allocation — one
  attribute read per hook site.

Span parentage is thread-local: a span opened on a thread nests under the
innermost span open *on that thread*, except that worker spans pass the
launch span explicitly (they run on pool threads whose local stack is
empty).  The recording order of same-thread siblings is captured in a
global sequence number; cross-thread races cannot reorder the export
because siblings from different threads always differ in ``(phase, key)``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Simulated microseconds charged per pair evaluation when laying out the
#: exported timeline.  The absolute scale is arbitrary (it is *simulated*
#: kernel time); what matters is that it is a pure function of the work.
US_PER_PAIR = 1e-3
#: Fixed simulated overheads (microseconds) for the engine's structural
#: spans, so zero-pair spans still have visible, deterministic extent.
LAUNCH_OVERHEAD_US = 5.0
WORKER_OVERHEAD_US = 1.0
BLOCK_OVERHEAD_US = 0.5
MERGE_OVERHEAD_US = 2.0

#: Canonical ordering phases for a launch's children: serial blocks and
#: in-block activity first, then the parallel worker group, then crash
#: recovery, then the shard merge.  Siblings sort by (phase, key, seq).
PHASE_BODY = 0
PHASE_WORKERS = 1
PHASE_RECOVERY = 2
PHASE_MERGE = 3


@dataclass
class Span:
    """One traced interval (or instant) in the canonical tree."""

    name: str
    cat: str = "engine"
    args: Dict[str, Any] = field(default_factory=dict)
    #: own simulated work in µs, before children are added
    cost_us: float = 0.0
    phase: int = PHASE_BODY
    key: int = 0
    #: worker lane for timeline layout; ``None`` inherits the parent's.
    #: Sibling spans with a lane are laid out concurrently.
    lane: Optional[int] = None
    #: device ordinal (trace process); ``None`` inherits the parent's.
    device: Optional[int] = None
    kind: str = "span"  # "span" | "instant"
    seq: int = 0
    children: List["Span"] = field(default_factory=list)
    # set by the export-time layout
    ts: float = 0.0
    dur: float = 0.0

    def sort_key(self):
        return (self.phase, self.key, self.seq)

    def find(self, name: str) -> List["Span"]:
        """All descendants (self included) with the given name."""
        out = []
        if self.name == name:
            out.append(self)
        for c in self.children:
            out.extend(c.find(name))
        return out


class _NullCtx:
    """Reusable no-op context manager (no allocation per use)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CTX = _NullCtx()


class NullTracer:
    """Disabled tracer: every hook is a no-op and allocates nothing.

    Hook sites must guard argument construction with ``tracer.enabled``;
    the methods here accept and ignore whatever they are given so a
    missing guard degrades to a cheap call rather than an error.
    """

    enabled = False
    __slots__ = ()

    def span(self, name, **kwargs):
        return _NULL_CTX

    def begin(self, name, **kwargs):
        return None

    def end(self, span):
        return None

    def instant(self, name, **kwargs):
        return None


#: The process-wide disabled tracer every hook defaults to.
NULL_TRACER = NullTracer()


class _SpanCtx:
    """Context manager binding a span to the recording thread's stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        return self.span

    def __exit__(self, *exc) -> bool:
        self._tracer._pop(self.span)
        return False


class Tracer:
    """Collects the span tree; see the module docstring for the model."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tls = threading.local()
        self.roots: List[Span] = []
        self._seq = 0
        #: run manifest attached by the runner; exported as trace metadata
        self.manifest: Dict[str, Any] = {}

    # -- recording -----------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if span in stack:
            # tolerate mismatched exits instead of corrupting the stack
            del stack[stack.index(span):]

    def _attach(self, span: Span, parent: Optional[Span]) -> Span:
        par = parent if parent is not None else self.current()
        with self._lock:
            self._seq += 1
            span.seq = self._seq
            (self.roots if par is None else par.children).append(span)
        return span

    def begin(
        self,
        name: str,
        *,
        cat: str = "engine",
        args: Optional[Dict[str, Any]] = None,
        cost_us: float = 0.0,
        phase: int = PHASE_BODY,
        key: int = 0,
        lane: Optional[int] = None,
        device: Optional[int] = None,
        parent: Optional[Span] = None,
    ) -> Span:
        """Record and return a span without pushing it on the thread stack
        (use :meth:`span` for the usual ``with`` form)."""
        span = Span(
            name=name, cat=cat, args=dict(args or {}), cost_us=float(cost_us),
            phase=phase, key=int(key), lane=lane, device=device,
        )
        return self._attach(span, parent)

    def end(self, span: Span) -> None:
        self._pop(span)

    def span(self, name: str, **kwargs) -> _SpanCtx:
        """``with tracer.span("launch", ...) as s:`` — children recorded on
        this thread inside the block nest under ``s``."""
        return _SpanCtx(self, self.begin(name, **kwargs))

    def instant(
        self,
        name: str,
        *,
        cat: str = "event",
        args: Optional[Dict[str, Any]] = None,
        phase: int = PHASE_BODY,
        key: int = 0,
        parent: Optional[Span] = None,
    ) -> Span:
        """Record a zero-duration typed event at the current position."""
        span = Span(
            name=name, cat=cat, args=dict(args or {}), phase=phase,
            key=int(key), kind="instant",
        )
        return self._attach(span, parent)

    def adopt(self, span: Span, parent: Optional[Span] = None) -> Span:
        """Attach a span subtree recorded by another tracer (typically a
        child process) under ``parent`` (or as a root).

        The subtree's sequence numbers were assigned by the child's own
        counter; they are renumbered here, depth-first in the child's
        canonical order, so the merged tree's ``(phase, key, seq)`` sort
        is a pure function of adoption order and subtree shape — the same
        bytes on export no matter what pids or interleavings produced the
        subtrees.
        """
        with self._lock:
            def renumber(s: Span) -> None:
                self._seq += 1
                s.seq = self._seq
                for c in sorted(s.children, key=Span.sort_key):
                    renumber(c)

            renumber(span)
            (self.roots if parent is None else parent.children).append(span)
        return span

    # -- queries -------------------------------------------------------------
    def find(self, name: str) -> List[Span]:
        out: List[Span] = []
        for root in self.roots:
            out.extend(root.find(name))
        return out

    def all_spans(self) -> List[Span]:
        """Every span/instant, depth-first in canonical order."""
        out: List[Span] = []

        def visit(span: Span) -> None:
            out.append(span)
            for c in sorted(span.children, key=Span.sort_key):
                visit(c)

        for root in sorted(self.roots, key=Span.sort_key):
            visit(root)
        return out

    # -- layout: simulated timestamps ---------------------------------------
    def layout(self) -> None:
        """Assign deterministic ``ts``/``dur`` (simulated µs) to the tree.

        Children are visited in canonical ``(phase, key, seq)`` order.
        Within one parent, consecutive lane-bearing spans (worker spans)
        start at the same cursor and run concurrently; everything else is
        sequential.  Idempotent: the layout is a pure function of the
        recorded tree.
        """
        t = 0.0
        for root in sorted(self.roots, key=Span.sort_key):
            t = self._layout_span(root, t)

    def _layout_span(self, span: Span, t0: float) -> float:
        if span.kind == "instant":
            span.ts, span.dur = t0, 0.0
            return t0
        span.ts = t0
        cursor = t0 + span.cost_us
        children = sorted(span.children, key=Span.sort_key)
        i = 0
        while i < len(children):
            child = children[i]
            if child.kind == "span" and child.lane is not None:
                # concurrent group: every consecutive lane-bearing sibling
                # starts together; the parent resumes at the latest end
                group_end = cursor
                while (
                    i < len(children)
                    and children[i].kind == "span"
                    and children[i].lane is not None
                ):
                    group_end = max(
                        group_end, self._layout_span(children[i], cursor)
                    )
                    i += 1
                cursor = group_end
            else:
                cursor = self._layout_span(child, cursor)
                i += 1
        span.dur = max(cursor - t0, span.cost_us)
        return span.ts + span.dur

    # -- export convenience (see repro.obs.export) ----------------------------
    def chrome_trace(self, **kwargs) -> Dict[str, Any]:
        from .export import chrome_trace

        return chrome_trace(self, **kwargs)

    def chrome_json(self, **kwargs) -> str:
        from .export import chrome_json

        return chrome_json(self, **kwargs)

    def export_chrome(self, path, **kwargs) -> None:
        from .export import write_chrome_trace

        write_chrome_trace(self, path, **kwargs)

    def jsonl(self) -> str:
        from .export import jsonl_events

        return jsonl_events(self)

    def export_jsonl(self, path) -> None:
        from .export import write_jsonl

        write_jsonl(self, path)


def resolve_trace(trace) -> tuple:
    """Coerce a ``run(trace=...)`` argument into ``(tracer, export_path)``.

    ``None``/``False`` selects :data:`NULL_TRACER`; ``True`` a fresh live
    :class:`Tracer`; an existing tracer is used as-is; anything else is
    treated as a filesystem path to export a Chrome trace to (implies a
    fresh live tracer).
    """
    import os

    if trace is None or trace is False:
        return NULL_TRACER, None
    if trace is True:
        return Tracer(), None
    if isinstance(trace, (Tracer, NullTracer)):
        return trace, None
    return Tracer(), os.fspath(trace)
