"""Warp shuffle instructions (Kepler+).

The paper's Algorithm 4 uses ``__shfl`` broadcast to share register content
among the lanes of a warp, tiling the R block through the register file
instead of shared memory or the ROC.  Here a "register file" for a block is
a NumPy array whose leading axis is the thread index within the block;
shuffles permute along that axis within each aligned warp_size group.

Shuffles are counted as register traffic only (they move data on the
operand network, not through any cache), which is why Algorithm 4 frees
both shared memory and the ROC.
"""

from __future__ import annotations

import numpy as np

from .errors import GpuSimError, LaunchConfigError


def _check(regs: np.ndarray, warp_size: int) -> int:
    n = regs.shape[0]
    if warp_size <= 0:
        raise LaunchConfigError(f"warp_size must be positive, got {warp_size}")
    if n % warp_size != 0:
        raise LaunchConfigError(
            f"register file of {n} lanes is not a whole number of "
            f"{warp_size}-lane warps"
        )
    return n


def shfl_broadcast(regs: np.ndarray, src_lane: int, warp_size: int = 32) -> np.ndarray:
    """Every lane receives the value held by ``src_lane`` of *its own* warp.

    Equivalent to CUDA ``__shfl_sync(mask, value, src_lane)``.
    """
    n = _check(regs, warp_size)
    if not 0 <= src_lane < warp_size:
        raise GpuSimError(f"src_lane {src_lane} outside warp of {warp_size}")
    grouped = regs.reshape(n // warp_size, warp_size, *regs.shape[1:])
    out = np.repeat(grouped[:, src_lane : src_lane + 1], warp_size, axis=1)
    return out.reshape(regs.shape).copy()


def shfl_down(regs: np.ndarray, delta: int, warp_size: int = 32) -> np.ndarray:
    """Lane i receives lane i+delta's value (lanes past the end keep theirs).

    Equivalent to ``__shfl_down_sync``; the staple of warp-level reductions.
    """
    n = _check(regs, warp_size)
    grouped = regs.reshape(n // warp_size, warp_size, *regs.shape[1:])
    out = grouped.copy()
    if delta > 0:
        valid = warp_size - delta
        if valid > 0:
            out[:, :valid] = grouped[:, delta:]
    return out.reshape(regs.shape)


def shfl_up(regs: np.ndarray, delta: int, warp_size: int = 32) -> np.ndarray:
    """Lane i receives lane i-delta's value (low lanes keep theirs)."""
    n = _check(regs, warp_size)
    grouped = regs.reshape(n // warp_size, warp_size, *regs.shape[1:])
    out = grouped.copy()
    if delta > 0 and delta < warp_size:
        out[:, delta:] = grouped[:, : warp_size - delta]
    return out.reshape(regs.shape)


def shfl_xor(regs: np.ndarray, mask: int, warp_size: int = 32) -> np.ndarray:
    """Lane i exchanges with lane i XOR mask (butterfly reductions)."""
    n = _check(regs, warp_size)
    lanes = np.arange(warp_size)
    partner = lanes ^ mask
    if (partner >= warp_size).any():
        raise GpuSimError(f"xor mask {mask} leaves the {warp_size}-lane warp")
    grouped = regs.reshape(n // warp_size, warp_size, *regs.shape[1:])
    out = grouped[:, partner]
    return out.reshape(regs.shape).copy()


def warp_reduce_sum(regs: np.ndarray, warp_size: int = 32) -> np.ndarray:
    """Butterfly sum; every lane ends with its warp's total.

    Implemented with :func:`shfl_xor` exactly as on hardware, log2(warp)
    steps, so tests can validate the primitive composition.
    """
    acc = regs.astype(np.float64, copy=True) if regs.dtype.kind == "f" else regs.copy()
    step = warp_size // 2
    while step >= 1:
        acc = acc + shfl_xor(acc, step, warp_size)
        step //= 2
    return acc.astype(regs.dtype, copy=False)
