"""CUDA-style occupancy calculator.

Occupancy — the fraction of a multiprocessor's warp slots that can be
resident simultaneously — is the mechanism behind the paper's Fig. 5: as
the SDH histogram (one privatized copy per block in shared memory) grows,
fewer blocks fit on an SM, occupancy falls in steps, and runtime rises as
a step function.  The calculator reproduces the real rules: blocks per SM
are limited by the thread count, the block-count cap, the register file and
the shared-memory pool, with hardware allocation granularities applied.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from .errors import LaunchConfigError, RegisterPressureError, SharedMemoryError
from .spec import DeviceSpec


def _round_up(value: int, granularity: int) -> int:
    if granularity <= 1:
        return value
    return ((value + granularity - 1) // granularity) * granularity


@dataclass(frozen=True)
class Occupancy:
    """Result of an occupancy query for one kernel configuration."""

    threads_per_block: int
    regs_per_thread: int
    shared_per_block: int
    blocks_per_sm: int
    active_threads_per_sm: int
    active_warps_per_sm: int
    occupancy: float
    limiter: str  # "threads" | "blocks" | "registers" | "shared"

    def __str__(self) -> str:
        return (
            f"{self.occupancy:.1%} ({self.blocks_per_sm} blocks x "
            f"{self.threads_per_block} thr, limited by {self.limiter})"
        )


@lru_cache(maxsize=4096)
def calculate_occupancy(
    spec: DeviceSpec,
    threads_per_block: int,
    regs_per_thread: int = 32,
    shared_per_block: int = 0,
) -> Occupancy:
    """Blocks-per-SM and occupancy under every hardware limit.

    Raises when a *single* block already violates a device limit — such a
    kernel cannot launch at all.

    Memoized: both :class:`DeviceSpec` and :class:`Occupancy` are frozen,
    and planner/figure sweeps issue the same queries thousands of times.
    """
    if threads_per_block <= 0:
        raise LaunchConfigError("threads_per_block must be positive")
    if threads_per_block > spec.max_threads_per_block:
        raise LaunchConfigError(
            f"block of {threads_per_block} threads exceeds device limit "
            f"{spec.max_threads_per_block}"
        )
    if threads_per_block % spec.warp_size != 0:
        # hardware rounds allocation up to whole warps
        eff_threads = _round_up(threads_per_block, spec.warp_size)
    else:
        eff_threads = threads_per_block
    if regs_per_thread > spec.max_registers_per_thread:
        raise RegisterPressureError(
            f"{regs_per_thread} registers/thread exceeds limit "
            f"{spec.max_registers_per_thread}"
        )
    if shared_per_block > spec.shared_mem_per_block:
        raise SharedMemoryError(
            f"{shared_per_block} B shared/block exceeds per-block limit "
            f"{spec.shared_mem_per_block} B"
        )

    limits = {}
    limits["threads"] = spec.max_threads_per_sm // eff_threads
    limits["blocks"] = spec.max_blocks_per_sm

    regs_alloc = _round_up(max(regs_per_thread, 1), spec.register_alloc_granularity)
    regs_per_block = regs_alloc * eff_threads
    limits["registers"] = (
        spec.registers_per_sm // regs_per_block if regs_per_block else limits["blocks"]
    )

    if shared_per_block > 0:
        shm_alloc = _round_up(shared_per_block, spec.shared_mem_granularity)
        limits["shared"] = spec.shared_mem_per_sm // shm_alloc
    else:
        limits["shared"] = limits["blocks"]

    blocks = min(limits.values())
    # report the binding constraint (ties broken in a stable, meaningful order)
    limiter = min(
        ("shared", "registers", "threads", "blocks"), key=lambda k: limits[k]
    )
    if blocks <= 0:
        raise LaunchConfigError(
            f"kernel needs more SM resources than one SM provides "
            f"(per-limit block counts: {limits})"
        )

    warps = blocks * eff_threads // spec.warp_size
    warps = min(warps, spec.max_warps_per_sm)
    active_threads = warps * spec.warp_size
    return Occupancy(
        threads_per_block=threads_per_block,
        regs_per_thread=regs_per_thread,
        shared_per_block=shared_per_block,
        blocks_per_sm=blocks,
        active_threads_per_sm=active_threads,
        active_warps_per_sm=warps,
        occupancy=warps / spec.max_warps_per_sm,
        limiter=limiter,
    )


def max_block_size_for_shared(spec: DeviceSpec, shared_per_thread_bytes: float) -> int:
    """Largest warp-multiple block whose per-thread shared footprint fits.

    Helper used by the planner when sizing tiles: ``B`` such that
    ``B * shared_per_thread <= shared_mem_per_block``.
    """
    if shared_per_thread_bytes <= 0:
        return spec.max_threads_per_block
    b = int(spec.shared_mem_per_block // shared_per_thread_bytes)
    b = (b // spec.warp_size) * spec.warp_size
    return max(min(b, spec.max_threads_per_block), 0)
