"""Exception hierarchy for the GPU simulator.

Every failure raised by :mod:`repro.gpusim` derives from :class:`GpuSimError`
so callers can catch simulator-level problems without masking ordinary
Python bugs.
"""

from __future__ import annotations


class GpuSimError(Exception):
    """Base class for all simulator errors."""


class LaunchConfigError(GpuSimError):
    """A kernel launch configuration violates a device limit.

    Raised e.g. when the block size exceeds ``max_threads_per_block`` or the
    grid is empty.
    """


class SharedMemoryError(GpuSimError):
    """A block requested more shared memory than the device allows."""


class RegisterPressureError(GpuSimError):
    """A kernel declared more registers per thread than the device allows."""


class MemorySpaceError(GpuSimError):
    """An operation was attempted on the wrong memory space.

    For example, writing to the read-only data cache, or taking an atomic
    on a register-file array.
    """


class OutOfBoundsError(GpuSimError):
    """A simulated memory access fell outside the allocation.

    The real hardware would silently corrupt memory (or fault); the
    simulator always faults loudly.
    """


class DeviceAllocationError(GpuSimError):
    """The device ran out of simulated global memory."""
