"""Exception hierarchy for the GPU simulator.

Every failure raised by :mod:`repro.gpusim` derives from :class:`GpuSimError`
so callers can catch simulator-level problems without masking ordinary
Python bugs.
"""

from __future__ import annotations


class GpuSimError(Exception):
    """Base class for all simulator errors."""


class LaunchConfigError(GpuSimError):
    """A kernel launch configuration violates a device limit.

    Raised e.g. when the block size exceeds ``max_threads_per_block`` or the
    grid is empty.
    """


class SharedMemoryError(GpuSimError):
    """A block requested more shared memory than the device allows."""


class RegisterPressureError(GpuSimError):
    """A kernel declared more registers per thread than the device allows."""


class MemorySpaceError(GpuSimError):
    """An operation was attempted on the wrong memory space.

    For example, writing to the read-only data cache, or taking an atomic
    on a register-file array.
    """


class OutOfBoundsError(GpuSimError):
    """A simulated memory access fell outside the allocation.

    The real hardware would silently corrupt memory (or fault); the
    simulator always faults loudly.
    """


class DeviceAllocationError(GpuSimError):
    """The device ran out of simulated global memory."""


class TransientFault(GpuSimError):
    """A failure expected to clear on retry (injected or environmental).

    The resilience supervisor (:mod:`repro.core.resilience`) retries
    transient faults with exponential backoff before escalating to
    degradation or failover.
    """


class WorkerCrashError(GpuSimError):
    """A simulator worker thread died mid-block during a parallel launch.

    Carries enough context for targeted recovery: the simulated device
    ordinal, the block being executed when the crash hit, and (filled in
    by the launch engine) the block ids whose effects were lost and must
    be re-executed.
    """

    def __init__(
        self,
        message: str,
        *,
        device: int = 0,
        block: int = -1,
        worker: int = -1,
    ) -> None:
        super().__init__(message)
        self.device = device
        self.block = block
        self.worker = worker
        #: block ids whose output shards were discarded with the crashed
        #: worker (set by the parallel engine before re-raising).
        self.pending_blocks: list = []


class OutputCorruptionError(GpuSimError):
    """A merged output failed an integrity invariant.

    Raised when a corruption detector (ticket-counter reconciliation,
    histogram mass conservation, matrix symmetry) catches a damaged
    output shard; the supervisor responds by re-executing the affected
    launch or device stripe.
    """


class NodeLostError(GpuSimError):
    """A simulated cluster node stopped answering heartbeats.

    Permanent (unlike :class:`TransientFault`): the cluster supervisor
    responds by re-striping the node's unfinished anchor rows across the
    surviving nodes, not by retrying the node.
    """

    def __init__(self, message: str, *, node: int = -1) -> None:
        super().__init__(message)
        self.node = node


class LinkTransferError(TransientFault):
    """A histogram-merge transfer failed on a cluster link.

    Transient: the cluster supervisor retries the transfer with backoff
    before escalating to topology degradation (ring -> tree -> star) or,
    at the degradation floor, declaring the unreachable node lost.
    """

    def __init__(
        self, message: str, *, src: int = -1, dst: int = -1
    ) -> None:
        super().__init__(message)
        self.src = src
        self.dst = dst
