"""Pipeline timing model: access counts -> cycles -> simulated seconds.

The model views an SM as a set of issue pipelines — compute (split into
arithmetic / control-flow / other, the way the paper's profiler tables
report), shared memory, read-only cache, global memory, and the shuffle
network.  A kernel's work is expressed as total *lane-cycles* consumed on
each pipeline; runtime is set by the dominant pipeline plus a small
interference contribution from the others, inflated when occupancy is too
low to hide latency and when atomic updates serialize under conflicts.

All shape parameters live in :mod:`repro.gpusim.calibration`, each pinned
to a specific observation from the paper (see DESIGN.md Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from .calibration import Calibration, ComputeCost, DEFAULT_CALIBRATION
from .counters import AccessCounters, MemSpace
from .spec import DeviceSpec


@dataclass
class TrafficProfile:
    """What a kernel does, in units the calibration understands.

    All counts are whole-launch totals in element accesses (per-lane), and
    ``pairs`` is the number of distance-function evaluations the profile's
    compute cost applies to.  ``issue_scale`` inflates the pair-proportional
    compute work, which is how divergence (issued-but-idle lanes) enters.
    """

    pairs: float = 0.0
    compute: Optional[ComputeCost] = None
    issue_scale: float = 1.0
    shm_reads: float = 0.0
    shm_writes: float = 0.0
    roc_reads: float = 0.0
    global_stream: float = 0.0  # coalesced reads: tile loads, anchor loads
    global_stream_writes: float = 0.0  # coalesced result stores / flushes
    global_scattered: float = 0.0  # naive-style repeated reads
    shm_atomics: float = 0.0
    global_atomics: float = 0.0
    shuffles: float = 0.0
    conflict_degree: float = 1.0  # mean warp serialization of atomics

    def __add__(self, other: "TrafficProfile") -> "TrafficProfile":
        if (
            self.compute is not None
            and other.compute is not None
            and self.compute != other.compute
        ):
            raise ValueError("cannot merge profiles with different compute costs")
        total_pairs = self.pairs * self.issue_scale + other.pairs * other.issue_scale
        raw_pairs = self.pairs + other.pairs
        scale = total_pairs / raw_pairs if raw_pairs else 1.0
        atomics = self.shm_atomics + other.shm_atomics
        if atomics:
            conflict = (
                self.conflict_degree * self.shm_atomics
                + other.conflict_degree * other.shm_atomics
            ) / atomics
        else:
            conflict = max(self.conflict_degree, other.conflict_degree)
        return TrafficProfile(
            pairs=raw_pairs,
            compute=self.compute or other.compute,
            issue_scale=scale,
            shm_reads=self.shm_reads + other.shm_reads,
            shm_writes=self.shm_writes + other.shm_writes,
            roc_reads=self.roc_reads + other.roc_reads,
            global_stream=self.global_stream + other.global_stream,
            global_stream_writes=self.global_stream_writes + other.global_stream_writes,
            global_scattered=self.global_scattered + other.global_scattered,
            shm_atomics=atomics,
            global_atomics=self.global_atomics + other.global_atomics,
            shuffles=self.shuffles + other.shuffles,
            conflict_degree=conflict,
        )

    def expected_counters(self) -> AccessCounters:
        """The AccessCounters this profile predicts (for cross-validation
        against a functional run)."""
        c = AccessCounters()
        c.add_read(MemSpace.SHARED, round(self.shm_reads))
        c.add_write(MemSpace.SHARED, round(self.shm_writes))
        c.add_read(MemSpace.ROC, round(self.roc_reads))
        c.add_read(MemSpace.GLOBAL, round(self.global_stream + self.global_scattered))
        c.add_write(MemSpace.GLOBAL, round(self.global_stream_writes))
        c.add_atomic(MemSpace.SHARED, round(self.shm_atomics))
        c.add_atomic(MemSpace.GLOBAL, round(self.global_atomics))
        c.add_read(MemSpace.REGISTER, round(self.shuffles))
        return c


@dataclass(frozen=True)
class PipelineCycles:
    """Total lane-cycles per pipeline for one launch."""

    arith: float = 0.0
    ctrl: float = 0.0
    other: float = 0.0
    shared: float = 0.0
    roc: float = 0.0
    global_: float = 0.0
    shuffle: float = 0.0

    @property
    def compute(self) -> float:
        return self.arith + self.ctrl + self.other

    def __add__(self, other: "PipelineCycles") -> "PipelineCycles":
        return PipelineCycles(
            arith=self.arith + other.arith,
            ctrl=self.ctrl + other.ctrl,
            other=self.other + other.other,
            shared=self.shared + other.shared,
            roc=self.roc + other.roc,
            global_=self.global_ + other.global_,
            shuffle=self.shuffle + other.shuffle,
        )

    def scaled(self, factor: float) -> "PipelineCycles":
        """All pipelines multiplied by ``factor`` (divergence applies to
        the whole warp instruction stream, loads included)."""
        return PipelineCycles(
            arith=self.arith * factor,
            ctrl=self.ctrl * factor,
            other=self.other * factor,
            shared=self.shared * factor,
            roc=self.roc * factor,
            global_=self.global_ * factor,
            shuffle=self.shuffle * factor,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "compute": self.compute,
            "shared": self.shared,
            "roc": self.roc,
            "global": self.global_,
            "shuffle": self.shuffle,
        }


def cycles_from_traffic(
    traffic: TrafficProfile, calib: Calibration = DEFAULT_CALIBRATION
) -> PipelineCycles:
    """Convert a traffic profile into per-pipeline cycle totals."""
    comp = traffic.compute or ComputeCost(0.0, 0.0, 0.0)
    scaled_pairs = traffic.pairs * traffic.issue_scale
    contended_atomic = calib.shared_atomic * (
        traffic.conflict_degree ** calib.conflict_exponent
    )
    return PipelineCycles(
        arith=comp.arith * scaled_pairs,
        ctrl=comp.ctrl * scaled_pairs,
        other=comp.other * scaled_pairs,
        shared=(traffic.shm_reads + traffic.shm_writes) * calib.shm_issue
        + traffic.shm_atomics * contended_atomic,
        roc=traffic.roc_reads * calib.roc_issue,
        global_=(traffic.global_stream + traffic.global_stream_writes)
        * calib.global_stream_issue
        + traffic.global_scattered * calib.global_issue
        + traffic.global_atomics
        * calib.global_atomic
        * (traffic.conflict_degree ** calib.conflict_exponent),
        shuffle=traffic.shuffles * calib.shuffle_issue,
    )


@dataclass(frozen=True)
class KernelTiming:
    """Simulated runtime and the issue-slot breakdown behind it."""

    seconds: float
    total_issue_cycles: float
    dominant: str
    occupancy: float
    pipeline_cycles: PipelineCycles
    utilization: Dict[str, float] = field(default_factory=dict)

    @property
    def arithmetic_utilization(self) -> float:
        return self.utilization.get("arith", 0.0)

    @property
    def control_utilization(self) -> float:
        return self.utilization.get("ctrl", 0.0)


def simulate_time(
    cycles: PipelineCycles,
    *,
    spec: DeviceSpec,
    occupancy: float = 1.0,
    calib: Calibration = DEFAULT_CALIBRATION,
    fixed_overhead_s: Optional[float] = None,
    extra_seconds: float = 0.0,
) -> KernelTiming:
    """Runtime of a launch whose work is ``cycles``.

    ``extra_seconds`` carries sequential stages priced separately (e.g. the
    output reduction kernel and device transfers).
    """
    if not 0.0 < occupancy <= 1.0:
        raise ValueError(f"occupancy must be in (0, 1], got {occupancy}")
    pipes = cycles.as_dict()
    dominant = max(pipes, key=lambda k: pipes[k])
    others = sum(v for k, v in pipes.items() if k != dominant)
    total_issue = pipes[dominant] + calib.interference_kappa * others
    slowdown = (1.0 / occupancy) ** calib.occupancy_gamma
    overhead = calib.launch_overhead_s if fixed_overhead_s is None else fixed_overhead_s
    seconds = (
        total_issue * slowdown / spec.peak_lane_cycles_per_sec
        + overhead
        + extra_seconds
    )
    util = {}
    if total_issue > 0:
        util = {
            "arith": cycles.arith / total_issue,
            "ctrl": cycles.ctrl / total_issue,
            "compute": cycles.compute / total_issue,
            "shared": cycles.shared / total_issue,
            "roc": cycles.roc / total_issue,
            "global": cycles.global_ / total_issue,
            "shuffle": cycles.shuffle / total_issue,
        }
    return KernelTiming(
        seconds=seconds,
        total_issue_cycles=total_issue,
        dominant=dominant,
        occupancy=occupancy,
        pipeline_cycles=cycles,
        utilization=util,
    )


def reduction_stage_seconds(
    output_size: int,
    num_private_copies: int,
    spec: DeviceSpec,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> float:
    """Cost of the privatized-output combine stage (paper Eq. 7 and Fig. 3).

    Each of the ``Hs`` final elements is produced by one thread reading
    ``M`` private copies from global memory and writing one result:
    ``Hs * (M * (Cgw + Cshmr + Cgr) + Cgw)`` in the paper's notation.  We
    price it as coalesced global traffic at stream cost, which keeps it
    negligible exactly as the paper intends.
    """
    accesses = output_size * (2 * num_private_copies + 1)
    cycles = accesses * calib.global_stream_issue
    return cycles / spec.peak_lane_cycles_per_sec + calib.launch_overhead_s


def scale_profile(traffic: TrafficProfile, factor: float) -> TrafficProfile:
    """Uniformly scale a profile's work (utility for sweeps/ablations)."""
    return replace(
        traffic,
        pairs=traffic.pairs * factor,
        shm_reads=traffic.shm_reads * factor,
        shm_writes=traffic.shm_writes * factor,
        roc_reads=traffic.roc_reads * factor,
        global_stream=traffic.global_stream * factor,
        global_stream_writes=traffic.global_stream_writes * factor,
        global_scattered=traffic.global_scattered * factor,
        shm_atomics=traffic.shm_atomics * factor,
        global_atomics=traffic.global_atomics * factor,
        shuffles=traffic.shuffles * factor,
    )
