"""Warp-divergence accounting for variable-trip-count loops.

The paper's load-balancing section (IV-E.1, Figs. 6-7) turns on a single
observation: in the intra-block pass, thread ``t`` of a block of ``B``
iterates ``B - 1 - t`` times, so the lanes of each warp have non-uniform
trip counts and the warp must execute the *maximum* over its lanes while
late lanes idle.  The cyclic schedule gives every thread exactly ``B/2``
iterations, removing the imbalance.

:func:`warp_loop_cycles` computes the number of warp-iterations a SIMD
machine actually issues for an arbitrary per-thread trip-count vector; the
ratio against the useful work is the divergence penalty used by the timing
model and validated in tests against brute-force lane simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DivergenceProfile:
    """Issue statistics for one variable-trip loop over one block."""

    warp_iterations: int  # iterations actually issued (max per warp, summed)
    thread_iterations: int  # useful lane-iterations requested
    lane_slots: int  # warp_iterations * warp_size

    @property
    def efficiency(self) -> float:
        """Fraction of issued lane slots doing useful work (1.0 = no
        divergence)."""
        if self.lane_slots == 0:
            return 1.0
        return self.thread_iterations / self.lane_slots

    @property
    def penalty(self) -> float:
        """Issue inflation relative to a perfectly balanced schedule."""
        if self.thread_iterations == 0:
            return 1.0
        return self.lane_slots / self.thread_iterations


def warp_loop_cycles(trip_counts: np.ndarray, warp_size: int = 32) -> DivergenceProfile:
    """Profile a loop whose lane ``t`` runs ``trip_counts[t]`` iterations."""
    trips = np.asarray(trip_counts, dtype=np.int64)
    if (trips < 0).any():
        raise ValueError("trip counts must be non-negative")
    pad = (-trips.size) % warp_size
    if pad:
        trips = np.concatenate([trips, np.zeros(pad, dtype=np.int64)])
    per_warp = trips.reshape(-1, warp_size)
    warp_iters = int(per_warp.max(axis=1).sum())
    thread_iters = int(trips.sum())
    return DivergenceProfile(
        warp_iterations=warp_iters,
        thread_iterations=thread_iters,
        lane_slots=warp_iters * warp_size,
    )


def triangular_trip_counts(block_size: int) -> np.ndarray:
    """Trip counts of the plain intra-block loop: thread t runs B-1-t."""
    return np.arange(block_size - 1, -1, -1)


def balanced_trip_counts(block_size: int) -> np.ndarray:
    """Trip counts under the paper's cyclic schedule.

    Every thread pairs with ``B/2`` partners; in the final iteration only
    the lower half of the block is active, but since ``B`` is a warp
    multiple that is block-level (not intra-warp) inactivity for the lower
    ``B/2`` threads...  Concretely: thread t runs ``B/2`` iterations if
    ``t < B/2`` else ``B/2 - 1 + 1`` — the paper's construction gives
    ceil((B-1)/2) or floor((B-1)/2) depending on parity of the pairing;
    for even ``B`` each *pair* (i, j) is produced exactly once when
    iterations run j = 1 .. B/2 with the convention that at j = B/2 only
    threads with ``t < B/2`` emit.  We model the issued trips directly.
    """
    if block_size % 2 != 0:
        raise ValueError("cyclic schedule requires an even block size")
    half = block_size // 2
    trips = np.full(block_size, half, dtype=np.int64)
    trips[half:] = half - 1  # upper half skips the final (mirrored) iteration
    return trips


def intra_block_divergence_gain(block_size: int, warp_size: int = 32) -> float:
    """Predicted speedup of the cyclic schedule on the intra-block pass.

    For B a warp multiple this evaluates to roughly ``1 + warp_size/B``
    (e.g. 12.5% at the paper's B=256, matching Fig. 7's 12-13%).
    """
    plain = warp_loop_cycles(triangular_trip_counts(block_size), warp_size)
    balanced = warp_loop_cycles(balanced_trip_counts(block_size), warp_size)
    return plain.warp_iterations / balanced.warp_iterations
