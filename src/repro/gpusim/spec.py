"""Device specifications.

The default :data:`TITAN_X` matches the paper's testbed (NVIDIA GeForce GTX
Titan X, Maxwell GM200) as described in Section IV-B and the cited GTX 980
whitepaper [15]: 24 SMs x 128 cores, 96 KB shared memory per SM, 12 GB of
global memory, and the latency figures the paper quotes from [20], [21]
(global 350, read-only cache 92, shared 28 clock cycles).

Presets for the older generations the paper names in Section III-A (Fermi,
Kepler) are included so the occupancy calculator and the planner can be
exercised across architectures; ``supports_shuffle`` is the Kepler+ feature
gate the paper calls out for Algorithm 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from .counters import MemSpace


@dataclass(frozen=True)
class LatencyTable:
    """Raw access latencies in clock cycles (paper Section IV-A/IV-B)."""

    global_mem: float = 350.0
    roc: float = 92.0
    shared: float = 28.0
    register: float = 1.0
    l2: float = 190.0  # between global and ROC; the paper folds it into "global"

    def for_space(self, space: MemSpace) -> float:
        return {
            MemSpace.GLOBAL: self.global_mem,
            MemSpace.ROC: self.roc,
            MemSpace.SHARED: self.shared,
            MemSpace.REGISTER: self.register,
            MemSpace.L2: self.l2,
            MemSpace.CONSTANT: self.roc,
        }[space]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated GPU."""

    name: str
    compute_capability: tuple[int, int]
    sm_count: int
    cores_per_sm: int
    clock_hz: float
    warp_size: int = 32
    max_threads_per_block: int = 1024
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 32
    max_warps_per_sm: int = 64
    shared_mem_per_sm: int = 96 * 1024
    shared_mem_per_block: int = 48 * 1024
    shared_mem_granularity: int = 256
    registers_per_sm: int = 64 * 1024
    registers_per_block_max: int = 64 * 1024
    max_registers_per_thread: int = 255
    register_alloc_granularity: int = 8  # registers, per thread
    global_mem_bytes: int = 12 * 1024**3
    #: Peak bandwidths in bytes/sec.  Shared-memory peak is the aggregate
    #: figure the paper uses ("3TB/s vs. 1TB/s for the ROC"); global is the
    #: 336 GB/s Titan X figure (the paper's "up to 224 GB/sec" refers to the
    #: GTX 980).
    global_bandwidth: float = 336e9
    shared_bandwidth: float = 3e12
    roc_bandwidth: float = 1e12
    l2_bandwidth: float = 500e9
    shared_banks: int = 32
    latency: LatencyTable = field(default_factory=LatencyTable)
    supports_shuffle: bool = True

    # -- derived -----------------------------------------------------------
    @property
    def total_cores(self) -> int:
        return self.sm_count * self.cores_per_sm

    @property
    def peak_lane_cycles_per_sec(self) -> float:
        """Total issue capacity: one cycle on one core lane per unit."""
        return self.total_cores * self.clock_hz

    def bandwidth_for(self, space: MemSpace) -> float:
        return {
            MemSpace.GLOBAL: self.global_bandwidth,
            MemSpace.SHARED: self.shared_bandwidth,
            MemSpace.ROC: self.roc_bandwidth,
            MemSpace.L2: self.l2_bandwidth,
            MemSpace.REGISTER: float("inf"),
            MemSpace.CONSTANT: self.roc_bandwidth,
        }[space]

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """Return a copy with selected fields replaced (for what-if studies)."""
        return replace(self, **kwargs)


#: The paper's testbed GPU (Section IV-B).
TITAN_X = DeviceSpec(
    name="GeForce GTX Titan X (Maxwell GM200)",
    compute_capability=(5, 2),
    sm_count=24,
    cores_per_sm=128,
    clock_hz=1.0e9,
)

#: Maxwell GM204 (the whitepaper the paper cites for bandwidth numbers).
GTX_980 = DeviceSpec(
    name="GeForce GTX 980 (Maxwell GM204)",
    compute_capability=(5, 2),
    sm_count=16,
    cores_per_sm=128,
    clock_hz=1.126e9,
    global_mem_bytes=4 * 1024**3,
    global_bandwidth=224e9,
)

#: Kepler-generation card: first generation with warp shuffle.
TESLA_K40 = DeviceSpec(
    name="Tesla K40 (Kepler GK110)",
    compute_capability=(3, 5),
    sm_count=15,
    cores_per_sm=192,
    clock_hz=745e6,
    shared_mem_per_sm=48 * 1024,
    max_blocks_per_sm=16,
    shared_bandwidth=2e12,
    global_bandwidth=288e9,
)

#: Fermi-generation card: no shuffle, small shared memory.
FERMI_M2090 = DeviceSpec(
    name="Tesla M2090 (Fermi GF110)",
    compute_capability=(2, 0),
    sm_count=16,
    cores_per_sm=32,
    clock_hz=1.3e9,
    max_threads_per_sm=1536,
    max_warps_per_sm=48,
    max_blocks_per_sm=8,
    shared_mem_per_sm=48 * 1024,
    registers_per_sm=32 * 1024,
    shared_bandwidth=1e12,
    global_bandwidth=177e9,
    supports_shuffle=False,
)

PRESETS: Dict[str, DeviceSpec] = {
    "titan-x": TITAN_X,
    "gtx-980": GTX_980,
    "k40": TESLA_K40,
    "fermi": FERMI_M2090,
}


def get_device_spec(name: str) -> DeviceSpec:
    """Look up a preset by key (``titan-x``, ``gtx-980``, ``k40``, ``fermi``)."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown device preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
