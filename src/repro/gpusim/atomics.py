"""Atomic operations with warp-conflict accounting.

The paper's output-stage analysis (Section IV-C/IV-D, Fig. 5) hinges on two
costs: the raw latency of an atomic read-modify-write on each memory space,
and the *serialization* that occurs when several lanes of a warp update the
same address in the same issue.  Functionally an atomic here is just
``np.add.at`` (correct under any interleaving); the conflict accounting
feeds the timing model's contention factor.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .counters import MemSpace
from .errors import MemorySpaceError
from .memory import TrackedArray


def _conflict_profile(indices: np.ndarray, warp_size: int) -> tuple[float, int]:
    """(summed conflict degree, warp issues) for lane-target indices.

    For each group of ``warp_size`` consecutive lanes, the conflict degree
    is the maximum multiplicity of any single target address: those updates
    serialize.  Unlike shared-memory *reads*, identical addresses do NOT
    broadcast — they are exactly the conflicting case.
    """
    idx = np.asarray(indices).ravel()
    if idx.size == 0:
        return 0.0, 0
    issues = 0
    degree_sum = 0.0
    for start in range(0, idx.size, warp_size):
        warp = idx[start : start + warp_size]
        _, counts = np.unique(warp, return_counts=True)
        degree_sum += float(counts.max())
        issues += 1
    return degree_sum, issues


def atomic_add(
    target: TrackedArray,
    indices: np.ndarray,
    values: np.ndarray | float,
    *,
    warp_size: int = 32,
    sample_conflicts: bool = True,
    conflict_sample: Optional[tuple[float, int]] = None,
) -> None:
    """Atomically add ``values`` at ``indices`` (per simulated lane).

    ``conflict_sample`` lets a kernel that already knows the conflict
    statistics (e.g. computed on a whole B x B update matrix at once) pass
    them in instead of paying the per-warp scan here.
    """
    if target.space not in (MemSpace.GLOBAL, MemSpace.SHARED):
        raise MemorySpaceError(
            f"atomics are only supported on global/shared memory, "
            f"not {target.space.value}"
        )
    idx = np.asarray(indices).ravel()
    vals = np.broadcast_to(np.asarray(values, dtype=target.dtype).ravel(), idx.shape) \
        if np.ndim(values) == 0 else np.asarray(values).ravel()
    if vals.shape != idx.shape:
        raise ValueError(f"indices {idx.shape} and values {vals.shape} differ")
    target.atomic_add_at(idx, vals)
    target.counters.add_atomic(target.space, idx.size)
    if conflict_sample is not None:
        degree_sum, issues = conflict_sample
        if issues:
            target.counters.add_conflict_sample(degree_sum / issues, issues)
    elif sample_conflicts:
        degree_sum, issues = _conflict_profile(idx, warp_size)
        if issues:
            target.counters.add_conflict_sample(degree_sum / issues, issues)


def atomic_add_dense(
    target: TrackedArray,
    counts: np.ndarray,
    n_ops: int,
    *,
    conflict_sample: Optional[tuple[float, int]] = None,
) -> None:
    """Aggregated form of :func:`atomic_add`: fold a dense per-address
    contribution array in with ONE vectorized charge.

    Equivalent to ``n_ops`` single-element atomic adds whose per-address
    totals are ``counts`` — integer histograms merge bit-identically, and
    the ledger records the same atomic count and conflict statistics.  The
    batched execution engine uses this so a whole R-tile batch charges the
    counters once instead of once per tile.
    """
    if target.space not in (MemSpace.GLOBAL, MemSpace.SHARED):
        raise MemorySpaceError(
            f"atomics are only supported on global/shared memory, "
            f"not {target.space.value}"
        )
    if counts.shape != target.shape:
        raise ValueError(
            f"dense contribution shape {counts.shape} does not match "
            f"target {target.shape}"
        )
    target.atomic_add_dense(counts.astype(target.dtype, copy=False))
    target.counters.add_atomic(target.space, int(n_ops))
    if conflict_sample is not None:
        degree_sum, issues = conflict_sample
        if issues:
            target.counters.add_conflict_sample(degree_sum / issues, issues)


def atomic_max(target: TrackedArray, indices: np.ndarray, values: np.ndarray) -> None:
    """Atomic element-wise max (used by kNN-style Type-I reductions)."""
    if target.space not in (MemSpace.GLOBAL, MemSpace.SHARED):
        raise MemorySpaceError("atomics require global or shared memory")
    idx = np.asarray(indices).ravel()
    vals = np.asarray(values).ravel()
    target.atomic_max_at(idx, vals)
    target.counters.add_atomic(target.space, idx.size)


def atomic_ticket(counter: TrackedArray, n: int) -> int:
    """Reserve ``n`` output slots via an atomic fetch-and-add on slot 0.

    This is the standard CUDA idiom for Type-III compaction output: one
    atomic per *warp or block batch*, not per element.  Returns the base
    offset of the reservation.
    """
    if counter.space is not MemSpace.GLOBAL:
        raise MemorySpaceError("ticket counters live in global memory")
    base = counter.fetch_add0(int(n))
    counter.counters.add_atomic(MemSpace.GLOBAL, 1)
    return base
