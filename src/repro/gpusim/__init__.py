"""GPU execution simulator substrate.

This package stands in for the CUDA runtime + NVIDIA Titan X testbed of the
paper (see DESIGN.md Section 2).  It has two cooperating layers:

* a **functional layer** (:class:`Device`, :class:`TrackedArray`,
  :mod:`~repro.gpusim.atomics`, :mod:`~repro.gpusim.shuffle`) that executes
  kernels block-by-block with NumPy, produces exact outputs, and counts
  every access per memory space; and
* an **analytical layer** (:mod:`~repro.gpusim.occupancy`,
  :mod:`~repro.gpusim.divergence`, :mod:`~repro.gpusim.timing`,
  :mod:`~repro.gpusim.profiler`) that turns access counts into simulated
  runtimes, utilizations and achieved bandwidths — the quantities the
  paper's figures and profiler tables report.
"""

from .atomics import atomic_add, atomic_add_dense, atomic_max, atomic_ticket
from .calibration import (
    Calibration,
    ComputeCost,
    CpuCalibration,
    DEFAULT_CALIBRATION,
    DEFAULT_CPU_CALIBRATION,
    GRAM_COMPUTE,
    JOIN_COMPUTE,
    KDE_COMPUTE,
    KNN_COMPUTE,
    PCF_COMPUTE,
    PSS_COMPUTE,
    SDH_COMPUTE,
)
from .contention import (
    collision_rate,
    effective_bins,
    expected_max_multiplicity,
    monte_carlo_max_multiplicity,
    warp_conflict_degrees,
    warp_conflict_degrees_dense,
)
from .counters import AccessCounters, ELEMENT_BYTES, MemSpace
from .device import Device, LaunchRecord
from .divergence import (
    DivergenceProfile,
    balanced_trip_counts,
    intra_block_divergence_gain,
    triangular_trip_counts,
    warp_loop_cycles,
)
from .errors import (
    DeviceAllocationError,
    GpuSimError,
    LaunchConfigError,
    LinkTransferError,
    MemorySpaceError,
    NodeLostError,
    OutOfBoundsError,
    OutputCorruptionError,
    RegisterPressureError,
    SharedMemoryError,
    TransientFault,
    WorkerCrashError,
)
from .faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedAllocationFailure,
    as_injector,
    link_key,
)
from .grid import BlockContext, LaunchConfig
from .l2cache import (
    CacheStats,
    NaiveL2Analysis,
    SetAssociativeCache,
    analyze_naive_kernel,
)
from .memory import ReadOnlyView, TrackedArray, bank_conflict_degree
from .occupancy import Occupancy, calculate_occupancy, max_block_size_for_shared
from .parallel import (
    ArrayShadow,
    BACKEND_ENV,
    BACKENDS,
    CrashRecovery,
    ParallelLaunchError,
    ParallelSession,
    WORKERS_ENV,
    resolve_backend,
    resolve_workers,
    run_blocks_parallel,
)
from .procpool import (
    HostChannel,
    cleanup_stale_segments,
    run_blocks_process_parallel,
)
from .profiler import (
    SimReport,
    bandwidth_table,
    build_report,
    format_bandwidth,
    utilization_table,
)
from .shuffle import shfl_broadcast, shfl_down, shfl_up, shfl_xor, warp_reduce_sum
from .spec import (
    DeviceSpec,
    FERMI_M2090,
    GTX_980,
    LatencyTable,
    PRESETS,
    TESLA_K40,
    TITAN_X,
    get_device_spec,
)
from .timing import (
    KernelTiming,
    PipelineCycles,
    TrafficProfile,
    cycles_from_traffic,
    reduction_stage_seconds,
    scale_profile,
    simulate_time,
)

__all__ = [
    # counters / spaces
    "AccessCounters", "MemSpace", "ELEMENT_BYTES",
    # spec
    "DeviceSpec", "LatencyTable", "TITAN_X", "GTX_980", "TESLA_K40",
    "FERMI_M2090", "PRESETS", "get_device_spec",
    # memory & device
    "TrackedArray", "ReadOnlyView", "bank_conflict_degree", "Device",
    "LaunchRecord", "BlockContext", "LaunchConfig",
    # atomics & shuffle
    "atomic_add", "atomic_add_dense", "atomic_max", "atomic_ticket",
    "shfl_broadcast", "shfl_down", "shfl_up", "shfl_xor", "warp_reduce_sum",
    # parallel launch engine
    "ArrayShadow", "CrashRecovery", "ParallelLaunchError", "ParallelSession",
    "WORKERS_ENV", "resolve_workers", "run_blocks_parallel",
    # execution backends
    "BACKEND_ENV", "BACKENDS", "resolve_backend",
    "HostChannel", "run_blocks_process_parallel", "cleanup_stale_segments",
    # fault injection
    "FaultEvent", "FaultInjector", "FaultKind", "FaultPlan", "FaultSpec",
    "InjectedAllocationFailure", "as_injector", "link_key",
    # occupancy & divergence
    "Occupancy", "calculate_occupancy", "max_block_size_for_shared",
    "DivergenceProfile", "warp_loop_cycles", "triangular_trip_counts",
    "balanced_trip_counts", "intra_block_divergence_gain",
    # timing & profiling
    "TrafficProfile", "PipelineCycles", "cycles_from_traffic",
    "simulate_time", "KernelTiming", "reduction_stage_seconds",
    "scale_profile", "SimReport", "build_report", "utilization_table",
    "bandwidth_table", "format_bandwidth",
    # calibration
    "Calibration", "ComputeCost", "CpuCalibration", "DEFAULT_CALIBRATION",
    "DEFAULT_CPU_CALIBRATION", "PCF_COMPUTE", "SDH_COMPUTE", "KNN_COMPUTE",
    "KDE_COMPUTE", "JOIN_COMPUTE", "GRAM_COMPUTE", "PSS_COMPUTE",
    # L2 model
    "SetAssociativeCache", "CacheStats", "analyze_naive_kernel",
    "NaiveL2Analysis",
    # contention
    "collision_rate", "effective_bins", "expected_max_multiplicity",
    "monte_carlo_max_multiplicity", "warp_conflict_degrees",
    "warp_conflict_degrees_dense",
    # errors
    "GpuSimError", "LaunchConfigError", "SharedMemoryError",
    "RegisterPressureError", "MemorySpaceError", "OutOfBoundsError",
    "DeviceAllocationError", "TransientFault", "WorkerCrashError",
    "OutputCorruptionError", "NodeLostError", "LinkTransferError",
]
