"""Set-associative L2 cache model.

The paper "ignores the non-programmable L2 cache" when designing kernels,
but its profiler tables still show it doing the heavy lifting for the
Naive kernel (Table II: 76% L2; Table IV: "Max (L2)").  This module makes
that story inspectable: an exact LRU set-associative simulator for access
streams, plus a closed-form hit-rate analysis of the Naive 2-BS access
pattern that explains why Naive's *effective* per-access cost (the
calibrated ``global_issue``) sits far below the raw 350-cycle DRAM
latency.

The analysis, in short: all threads of a block walk the same input
suffix in lockstep, so a warp's 32 reads of ``input[j]`` coalesce into a
handful of line fetches and every other block re-reads lines that are
L2-resident while the working set (the N-point suffix) fits in cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .spec import DeviceSpec, TITAN_X

#: Titan X (GM200) L2: 3 MB, 32-byte sectors are the profiler's unit.
DEFAULT_L2_BYTES = 3 * 1024 * 1024
DEFAULT_LINE_BYTES = 32
DEFAULT_WAYS = 16


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """Exact LRU set-associative cache over byte addresses."""

    def __init__(
        self,
        size_bytes: int = DEFAULT_L2_BYTES,
        line_bytes: int = DEFAULT_LINE_BYTES,
        ways: int = DEFAULT_WAYS,
    ) -> None:
        if size_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("cache geometry must be positive")
        if size_bytes % (line_bytes * ways):
            raise ValueError(
                f"size {size_bytes} is not a whole number of "
                f"{ways}-way, {line_bytes}-byte sets"
            )
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (line_bytes * ways)
        # per-set: ordered list of resident tags, most recent last
        self._sets = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def access(self, addresses: Iterable[int]) -> CacheStats:
        """Run a byte-address stream through the cache (in order)."""
        for addr in np.asarray(list(addresses), dtype=np.int64):
            line = int(addr) // self.line_bytes
            s = line % self.num_sets
            tag = line // self.num_sets
            resident = self._sets[s]
            self.stats.accesses += 1
            if tag in resident:
                resident.remove(tag)
                resident.append(tag)
                self.stats.hits += 1
            else:
                if len(resident) >= self.ways:
                    resident.pop(0)  # evict LRU
                resident.append(tag)
        return self.stats

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()


@dataclass
class NaiveL2Analysis:
    """Closed-form L2 behaviour of the Naive kernel's read pattern."""

    n: int
    dims: int
    hit_rate: float
    effective_cycles: float
    working_set_bytes: int
    fits_in_l2: bool


def analyze_naive_kernel(
    n: int,
    dims: int = 3,
    spec: DeviceSpec = TITAN_X,
    l2_bytes: int = DEFAULT_L2_BYTES,
    line_bytes: int = DEFAULT_LINE_BYTES,
    element_bytes: int = 4,
) -> NaiveL2Analysis:
    """Why Naive's effective global cost is ~GLOBAL_ISSUE, not 350 cycles.

    Per warp iteration, 32 threads read the *same* element ``input[j]``
    (each thread's loop index advances in lockstep): one line fetch
    serves the whole warp, and across the many resident warps the line is
    almost always still cached.  The compulsory traffic is one line fetch
    per ``line_bytes/element_bytes`` elements per *concurrent working
    front*; everything else hits.

    hit_rate ~ 1 - (bytes of distinct lines touched) / (bytes requested),
    degraded when the suffix working set exceeds the L2.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    working_set = n * dims * element_bytes
    fits = working_set <= l2_bytes
    elems_per_line = line_bytes // element_bytes
    # every warp's 32 lane-reads of input[j] are one request; each line
    # serves elems_per_line consecutive j values
    requests_per_line = 32 * elems_per_line
    base_hit = 1.0 - 1.0 / requests_per_line
    if not fits:
        # cross-block reuse is partially lost once the streamed suffix
        # overflows the L2; intra-warp coalescing (the dominant term)
        # survives because the reuse window of a warp front is tiny
        overflow = min(1.0, l2_bytes / working_set)
        base_hit *= 0.85 + 0.15 * overflow
    raw = spec.latency.global_mem
    l2_lat = spec.latency.l2
    # mean pre-hiding latency per access; the calibrated global_issue is
    # lower still because resident warps hide most of this latency
    effective = base_hit * l2_lat * 0.25 + (1 - base_hit) * raw
    return NaiveL2Analysis(
        n=n,
        dims=dims,
        hit_rate=base_hit,
        effective_cycles=effective,
        working_set_bytes=working_set,
        fits_in_l2=fits,
    )
