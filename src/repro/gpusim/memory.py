"""Tracked memory spaces.

A :class:`TrackedArray` wraps a NumPy buffer, tags it with the
:class:`~repro.gpusim.counters.MemSpace` it lives in, and records every
element access into an :class:`~repro.gpusim.counters.AccessCounters`
ledger.  Kernels in :mod:`repro.core.kernels` are written against this API
in block-vectorized SPMD style: an index array stands for "each thread in
the block reads its own element", and the tracker counts one access per
(thread, element) pair — exactly the unit the paper's Eqs. 2-7 count.

The read-only data cache is modelled by :class:`ReadOnlyView`, which
forbids writes for the lifetime of the kernel (the paper: "it cannot be
overwritten during the lifespan of the kernel").
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from .counters import AccessCounters, MemSpace
from .errors import MemorySpaceError, OutOfBoundsError

Index = Union[int, slice, np.ndarray, Sequence[int], tuple]


def _access_count(array_shape: tuple, idx: Index) -> int:
    """Number of element accesses implied by indexing ``idx``.

    Computed by asking NumPy how many elements the selection produces;
    cheap because we only build the result shape, not the data.
    """
    probe = np.empty(array_shape, dtype=np.bool_)
    sel = probe[idx]
    return int(sel.size) if isinstance(sel, np.ndarray) else 1


class TrackedArray:
    """A NumPy-backed allocation in one simulated memory space.

    During a block-parallel launch (:mod:`repro.gpusim.parallel`) the
    device attaches an ``ArrayShadow`` to every global allocation; all
    reads and mutations are then routed to the calling worker's privatized
    shard, and a final reduction folds the shards back into the base
    buffer.  Outside parallel launches ``_shadow`` is ``None`` and every
    access goes straight to the base buffer, as before.
    """

    __slots__ = ("_data", "space", "counters", "name", "_broadcast_reads", "_shadow")

    def __init__(
        self,
        data: np.ndarray,
        space: MemSpace,
        counters: AccessCounters,
        name: str = "",
        broadcast_reads: int = 1,
    ) -> None:
        self._data = data
        self.space = space
        self.counters = counters
        self.name = name or f"{space.value}-array"
        #: multiplier applied to read counts: a kernel reading one shared
        #: element into *every* thread of a block is one access per thread,
        #: not one per element.  Kernels set this per-read via ``ld(...,
        #: fanout=...)`` instead; this default stays 1.
        self._broadcast_reads = broadcast_reads
        self._shadow = None  # ArrayShadow during parallel launches

    @property
    def data(self) -> np.ndarray:
        """The buffer this thread should see (worker shard when parallel)."""
        shadow = self._shadow
        if shadow is None:
            return self._data
        return shadow.read_array()

    # -- geometry ----------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self._data.shape

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def size(self) -> int:
        return int(self._data.size)

    @property
    def nbytes(self) -> int:
        return int(self._data.nbytes)

    def __len__(self) -> int:
        return len(self._data)

    # -- tracked element access -------------------------------------------
    def ld(self, idx: Index = slice(None), *, fanout: int = 1) -> np.ndarray:
        """Tracked read.

        ``fanout`` is the number of threads receiving each selected
        element (e.g. B for "every thread in the block reads R[j]").
        Returns a copy so later writes cannot alias simulator state.
        """
        try:
            values = self.data[idx]
        except IndexError as exc:
            raise OutOfBoundsError(f"read OOB on {self.name}: {exc}") from exc
        n = values.size if isinstance(values, np.ndarray) else 1
        self.counters.add_read(self.space, int(n) * fanout)
        return np.array(values, copy=True)

    def st(self, idx: Index, values: np.ndarray | float | int) -> None:
        """Tracked write."""
        if isinstance(self, ReadOnlyView):  # defensive; subclass overrides
            raise MemorySpaceError(f"{self.name} is read-only")
        shadow = self._shadow
        try:
            n = _access_count(self._data.shape, idx)
            if shadow is None:
                self._data[idx] = values
            else:
                shadow.write(idx, values)
        except IndexError as exc:
            raise OutOfBoundsError(f"write OOB on {self.name}: {exc}") from exc
        self.counters.add_write(self.space, n)

    def fill(self, value: float) -> None:
        """Tracked bulk initialization (counts one write per element)."""
        shadow = self._shadow
        if shadow is None:
            self._data[...] = value
        else:
            shadow.fill(value)
        self.counters.add_write(self.space, self.size)

    # -- atomic primitives (shadow-aware; counters charged by the caller) ---
    def atomic_add_at(self, idx: np.ndarray, values: np.ndarray) -> None:
        """Scattered commutative add (``np.add.at`` semantics)."""
        shadow = self._shadow
        if shadow is None:
            np.add.at(self._data, idx, values)
        else:
            shadow.add_at(idx, values)

    def atomic_add_dense(self, counts: np.ndarray) -> None:
        """Aggregated add of a dense per-address contribution array."""
        shadow = self._shadow
        if shadow is None:
            self._data += counts
        else:
            shadow.add_dense(counts)

    def atomic_max_at(self, idx: np.ndarray, values: np.ndarray) -> None:
        """Scattered commutative max (``np.maximum.at`` semantics)."""
        shadow = self._shadow
        if shadow is None:
            np.maximum.at(self._data, idx, values)
        else:
            shadow.max_at(idx, values)

    def fetch_add0(self, n: int) -> int:
        """Fetch-and-add on element 0 (ticket counters).  Under a parallel
        launch the returned offset is worker-local; totals still merge
        exactly because the per-worker deltas sum."""
        shadow = self._shadow
        if shadow is None:
            base = int(self._data[0])
            self._data[0] = base + int(n)
            return base
        return shadow.fetch_add0(int(n))

    # -- untracked escape hatch ---------------------------------------------
    def raw(self) -> np.ndarray:
        """The underlying buffer, for assertions and host-side reads only."""
        return self.data

    def __repr__(self) -> str:
        return (
            f"TrackedArray({self.name}, space={self.space.value}, "
            f"shape={self.data.shape}, dtype={self.data.dtype})"
        )


class ReadOnlyView(TrackedArray):
    """Read-only data cache (texture path) view over global data.

    Reads are counted against :attr:`MemSpace.ROC`.  Any write raises
    :class:`MemorySpaceError`, matching the hardware restriction the paper
    relies on when it rules the ROC out for output privatization.
    """

    def __init__(self, base: TrackedArray, counters: Optional[AccessCounters] = None):
        super().__init__(
            base.data,
            MemSpace.ROC,
            counters if counters is not None else base.counters,
            name=f"roc({base.name})",
        )

    def st(self, idx: Index, values) -> None:  # noqa: D102 - forbidden
        raise MemorySpaceError(
            f"{self.name}: the read-only data cache cannot be written "
            "during the lifespan of a kernel"
        )

    def fill(self, value: float) -> None:  # noqa: D102 - forbidden
        raise MemorySpaceError(f"{self.name} is read-only")


def bank_conflict_degree(indices: np.ndarray, banks: int = 32, element_words: int = 1) -> float:
    """Worst-case shared-memory bank serialization for one warp access.

    ``indices`` are the word addresses accessed by the lanes of a single
    warp.  The returned degree is the maximum number of lanes hitting the
    same bank with *different* addresses (hardware broadcasts identical
    addresses for free), i.e. the number of replays the access needs.
    """
    idx = np.asarray(indices).ravel() * element_words
    if idx.size == 0:
        return 1.0
    bank = idx % banks
    worst = 1
    for b in np.unique(bank):
        distinct = np.unique(idx[bank == b]).size
        worst = max(worst, distinct)
    return float(worst)
