"""Block-parallel launch engine: privatized shards + deterministic reduction.

The simulator's launch loop exploits the same invariant the paper's kernels
do: thread blocks are independent except for commutative atomic updates
(``device.py`` module docstring).  That makes block execution embarrassingly
parallel *if* the mutable state is privatized — which is exactly the
paper's Section IV-C medicine, applied to the simulator itself:

* every worker owns a **private ledger** (:class:`~repro.gpusim.counters.
  AccessCounters`), merged in worker order after the join so the combined
  counts are deterministic and equal to the sequential launch;
* every device-global allocation is wrapped in an :class:`ArrayShadow`
  holding one **privatized shard per worker** — plain writes are tracked
  with a written-mask (blocks write disjoint slices; overlap raises),
  atomic adds accumulate in a per-worker **delta** array, atomic maxima in
  a per-worker running copy — and a final **reduction** folds the shards
  back into the base buffer in worker order.

Floating-point note: integer outputs (histograms, tickets) merge exactly;
float atomic accumulations are re-associated by the worker grouping, so
they are deterministic for a fixed worker count but may differ from the
sequential path in the last ulp (the usual tolerance for commutative
atomics, documented in DESIGN.md).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.tracer import (
    BLOCK_OVERHEAD_US,
    MERGE_OVERHEAD_US,
    NULL_TRACER,
    PHASE_MERGE,
    PHASE_RECOVERY,
    PHASE_WORKERS,
    WORKER_OVERHEAD_US,
)
from .counters import AccessCounters
from .errors import GpuSimError, WorkerCrashError

if TYPE_CHECKING:  # pragma: no cover
    from .faults import FaultInjector

#: Environment variable overriding the default worker count for simulated
#: launches.  Unset / "1" keeps the block-serial loop; "auto" or "0" uses
#: every available core; any other integer is used as-is.
WORKERS_ENV = "REPRO_SIM_WORKERS"

#: Environment variable selecting the execution backend for simulated
#: launches and engine runs (see :func:`resolve_backend`).
BACKEND_ENV = "REPRO_SIM_BACKEND"

#: Recognized backend names.  ``auto`` keeps the historical behaviour
#: (thread pool when workers > 1, block-serial otherwise); ``sequential``
#: forces the serial loop; ``threads`` / ``processes`` pick the worker
#: pool flavour; ``megabatch`` selects the stacked-tile vectorized engine
#: (a kernel-level path — block execution itself follows ``auto``).
BACKENDS = ("auto", "sequential", "threads", "processes", "megabatch")

#: memoized (raw env string, parsed value) pairs — sweeps resolve these
#: once per ``execute`` call and must not re-parse the environment.
_WORKERS_CACHE: Tuple[str, Optional[int]] = ("", None)
_BACKEND_CACHE: Tuple[str, str] = ("", "auto")


class ParallelLaunchError(GpuSimError):
    """A parallel launch violated the block-independence invariant."""


def _workers_from_env() -> Optional[int]:
    """Parsed ``REPRO_SIM_WORKERS`` (``None`` = unset).

    Memoized on the raw string, like ``REPRO_SIM_TILE_BATCH``: repeated
    ``execute()`` calls pay one dict lookup, while an env change between
    calls (tests monkeypatching, sweep drivers) is still picked up.  A
    malformed value names the variable and the accepted forms instead of
    surfacing a bare ``int()`` ValueError.
    """
    global _WORKERS_CACHE
    raw = os.environ.get(WORKERS_ENV, "")
    cached_raw, cached_val = _WORKERS_CACHE
    if raw == cached_raw:
        return cached_val
    env = raw.strip().lower()
    if not env:
        value: Optional[int] = None
    elif env == "auto":
        value = 0
    else:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"invalid {WORKERS_ENV}={raw!r}: expected 'auto' or a "
                "non-negative integer worker count"
            ) from None
        if value < 0:
            raise ValueError(
                f"invalid {WORKERS_ENV}={raw!r}: expected 'auto' or a "
                "non-negative integer worker count"
            )
    _WORKERS_CACHE = (raw, value)
    return value


def resolve_workers(workers: Optional[int], grid_dim: int) -> int:
    """Resolve a ``workers`` request to a concrete count in [1, grid_dim].

    ``None`` consults :data:`WORKERS_ENV`; ``0`` (or the env value
    ``"auto"``) means one worker per available core.
    """
    if workers is None:
        workers = _workers_from_env()
        if workers is None:
            return 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        workers = os.cpu_count() or 1
    return max(1, min(workers, grid_dim))


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a ``backend`` request to one of :data:`BACKENDS`.

    ``None`` consults :data:`BACKEND_ENV` (memoized on the raw string;
    unset means ``"auto"``).  Unknown names raise a ``ValueError`` that
    lists the accepted backends.
    """
    if backend is None:
        global _BACKEND_CACHE
        raw = os.environ.get(BACKEND_ENV, "")
        cached_raw, cached_val = _BACKEND_CACHE
        if raw == cached_raw:
            return cached_val
        value = raw.strip().lower() or "auto"
        if value not in BACKENDS:
            raise ValueError(
                f"invalid {BACKEND_ENV}={raw!r}: expected one of "
                + ", ".join(BACKENDS)
            )
        _BACKEND_CACHE = (raw, value)
        return value
    name = str(backend).strip().lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}: expected one of "
            + ", ".join(BACKENDS)
        )
    return name


class _Shard:
    """One worker's privatized view of a global allocation.

    The value copy is materialized lazily on first mutation, so read-only
    arrays (inputs, ROC-bound data) cost nothing per worker.
    """

    __slots__ = ("copy", "written", "delta", "maxed")

    def __init__(self) -> None:
        self.copy: Optional[np.ndarray] = None
        self.written: Optional[np.ndarray] = None
        self.delta: Optional[np.ndarray] = None
        self.maxed: Optional[np.ndarray] = None

    def materialize(self, base: np.ndarray) -> np.ndarray:
        if self.copy is None:
            self.copy = base.copy()
        return self.copy


class ArrayShadow:
    """Per-worker shards over one base buffer, plus the merge (reduction).

    All mutation entry points mirror :class:`~repro.gpusim.memory.
    TrackedArray`'s primitives: ``write`` / ``fill`` (plain stores),
    ``add_at`` / ``add_dense`` (commutative atomic adds, accumulated in a
    delta so base values are never double-counted), ``max_at`` and
    ``fetch_add0`` (ticket counters).
    """

    def __init__(self, session: "ParallelSession", base: np.ndarray) -> None:
        self._session = session
        self._base = base
        self._shards: dict[int, _Shard] = {}
        self._lock = threading.Lock()

    # -- worker-side access -------------------------------------------------
    def _shard(self) -> _Shard:
        w = self._session.worker()
        try:
            return self._shards[w]
        except KeyError:
            with self._lock:
                return self._shards.setdefault(w, _Shard())

    def read_array(self) -> np.ndarray:
        """The array this worker should read: its shard if it has mutated
        the buffer, the pristine base otherwise."""
        w = self._session.worker()
        shard = self._shards.get(w)
        if shard is None or shard.copy is None:
            return self._base
        return shard.copy

    def write(self, idx, values) -> None:
        shard = self._shard()
        copy = shard.materialize(self._base)
        if shard.written is None:
            shard.written = np.zeros(self._base.shape, dtype=bool)
        copy[idx] = values
        shard.written[idx] = True

    def fill(self, value) -> None:
        self.write(..., value)

    def add_at(self, idx, values) -> None:
        shard = self._shard()
        copy = shard.materialize(self._base)
        if shard.delta is None:
            shard.delta = np.zeros(self._base.shape, dtype=self._base.dtype)
        np.add.at(copy, idx, values)
        np.add.at(shard.delta, idx, values)

    def add_dense(self, counts: np.ndarray) -> None:
        """Aggregated commutative add of a dense per-address count/weight
        array (the batched engine's one-charge-per-batch path)."""
        shard = self._shard()
        copy = shard.materialize(self._base)
        if shard.delta is None:
            shard.delta = np.zeros(self._base.shape, dtype=self._base.dtype)
        copy += counts
        shard.delta += counts

    def max_at(self, idx, values) -> None:
        shard = self._shard()
        copy = shard.materialize(self._base)
        if shard.maxed is None:
            shard.maxed = np.zeros(self._base.shape, dtype=bool)
        np.maximum.at(copy, idx, values)
        shard.maxed[idx] = True

    def fetch_add0(self, n: int) -> int:
        """Worker-local ticket counter: returns this worker's running
        offset.  Offsets are local to the shard; the merged total equals
        the sequential count because the deltas sum."""
        shard = self._shard()
        copy = shard.materialize(self._base)
        if shard.delta is None:
            shard.delta = np.zeros(self._base.shape, dtype=self._base.dtype)
        base = int(copy[0])
        copy[0] += n
        shard.delta[0] += n
        return base

    def drop(self, w: int) -> None:
        """Discard worker ``w``'s shard — its (possibly partial) effects
        vanish, as if the worker never ran.  Crash recovery re-executes
        the dropped worker's blocks afterwards."""
        self._shards.pop(w, None)

    @property
    def mutated(self) -> bool:
        return any(s.copy is not None for s in self._shards.values())

    # -- reduction ----------------------------------------------------------
    def merge(self, name: str) -> None:
        """Fold all shards into the base buffer, in worker-index order."""
        seen_writes: Optional[np.ndarray] = None
        for w in sorted(self._shards):
            shard = self._shards[w]
            if shard.copy is None:
                continue
            if shard.written is not None and shard.written.any():
                if shard.delta is not None or shard.maxed is not None:
                    raise ParallelLaunchError(
                        f"{name}: plain writes mixed with atomic updates in "
                        "one parallel launch; the merge order would be "
                        "ambiguous"
                    )
                if seen_writes is None:
                    seen_writes = shard.written
                else:
                    overlap = seen_writes & shard.written
                    if overlap.any():
                        raise ParallelLaunchError(
                            f"{name}: {int(overlap.sum())} element(s) "
                            "written by more than one block shard — the "
                            "kernel violates the block-independence "
                            "invariant parallel launches rely on"
                        )
                    seen_writes = seen_writes | shard.written
                self._base[shard.written] = shard.copy[shard.written]
            if shard.delta is not None:
                self._base += shard.delta
            if shard.maxed is not None:
                m = shard.maxed
                np.maximum(self._base, np.where(m, shard.copy, self._base),
                           out=self._base)


class ParallelSession:
    """State of one block-parallel launch: worker identity + shadows."""

    def __init__(self, num_workers: int) -> None:
        self.num_workers = num_workers
        self._tls = threading.local()
        self._shadowed: List = []  # TrackedArray objects with shadows attached

    def worker(self) -> int:
        w = getattr(self._tls, "worker", None)
        if w is None:
            raise ParallelLaunchError(
                "device memory accessed from a thread that is not a launch "
                "worker"
            )
        return w

    def enter_worker(self, w: int) -> None:
        self._tls.worker = w

    def attach(self, arrays: Sequence) -> None:
        """Shadow every live device allocation for the launch's duration."""
        for arr in arrays:
            if arr._shadow is not None:
                raise ParallelLaunchError(
                    f"{arr.name}: already shadowed — concurrent parallel "
                    "launches on one device are not supported"
                )
            arr._shadow = ArrayShadow(self, arr._data)
            self._shadowed.append(arr)

    def detach(self) -> None:
        for arr in self._shadowed:
            arr._shadow = None

    def drop_worker(self, w: int) -> None:
        """Discard every shard worker ``w`` produced (crash recovery)."""
        for arr in self._shadowed:
            arr._shadow.drop(w)

    def merge(
        self,
        injector: "Optional[FaultInjector]" = None,
        device_ordinal: int = 0,
    ) -> None:
        mutated: Dict[str, np.ndarray] = {}
        for arr in self._shadowed:
            if arr._shadow.mutated:
                mutated[arr.name] = arr._data
            arr._shadow.merge(arr.name)
        if injector is not None:
            # shard-corruption injection point: the fold back into device
            # memory is where a flaky interconnect / DMA engine would bite
            injector.on_merge(device_ordinal, mutated)


@dataclass
class CrashRecovery:
    """Policy + flight recorder for in-launch worker-crash recovery.

    When attached to a launch, a :class:`WorkerCrashError` does not abort:
    the crashed worker's privatized shards and ledger are discarded (its
    partial block is never merged) and only its block range is re-executed
    — the surviving workers' completed blocks are kept, which is exactly
    what output privatization buys (paper Fig. 3: shards merge by a
    commutative reduction, so a partial result set is safely mergeable).
    """

    max_retries: int = 2
    on_recover: Optional[Callable[[Dict[str, object]], None]] = None

    def record(self, event: Dict[str, object]) -> None:
        if self.on_recover is not None:
            self.on_recover(event)


def run_blocks_parallel(
    num_workers: int,
    grid_dim: int,
    run_block: Callable[[int, AccessCounters], None],
    arrays: Sequence,
    set_active: Callable[[Optional[AccessCounters]], None],
    *,
    block_ids: Optional[Sequence[int]] = None,
    injector: "Optional[FaultInjector]" = None,
    device_ordinal: int = 0,
    crash_recovery: Optional[CrashRecovery] = None,
    tracer=None,
    launch_span=None,
    deadline=None,
    cancel=None,
    progress=None,
) -> AccessCounters:
    """Execute ``run_block`` for every block id with ``num_workers``
    privatized workers and reduce the results.

    Blocks are dealt round-robin (block ``b`` to worker ``b % W``) — the
    balanced decomposition for the triangular inter-block workload, where
    per-block cost decays linearly with block id.  ``set_active`` points
    the device's thread-local ledger at the worker's private counters so
    device-global traffic lands in the right shard.  Returns the merged
    ledger (worker order, deterministic).

    ``block_ids`` restricts the launch to a subset of blocks (a device
    stripe re-executed by the resilience layer); ``injector`` plants
    deterministic faults at the block and merge hooks; ``crash_recovery``
    turns worker crashes into targeted block re-execution instead of a
    launch failure.

    ``tracer`` (default :data:`~repro.obs.tracer.NULL_TRACER`) records a
    span per worker, block, recovery attempt and the merge; worker spans
    attach to ``launch_span`` explicitly because they open on pool threads
    whose thread-local span stack is empty.

    ``deadline`` / ``cancel`` are duck-typed cooperative lifecycle
    controls (anything with ``check()``): every worker polls them before
    each block, so a breach surfaces within one block's work.  Their
    exceptions are *not* crashes — they propagate out of the launch
    instead of entering the recovery path.

    ``progress`` is the per-block completion hook
    ``progress(device_ordinal, block_id)`` — fired from worker threads
    after each block (and after recovery re-executions), so it must be
    cheap and thread-safe.
    """
    blocks = list(range(grid_dim)) if block_ids is None else list(block_ids)
    tracer = tracer if tracer is not None else NULL_TRACER
    session = ParallelSession(num_workers)
    session.attach(arrays)
    ledgers = [AccessCounters() for _ in range(num_workers)]
    crashes: List[Optional[WorkerCrashError]] = [None] * num_workers

    def worker_fn(w: int) -> None:
        session.enter_worker(w)
        set_active(ledgers[w])
        deal = blocks[w::num_workers]
        if tracer.enabled:
            worker_ctx = tracer.span(
                "worker", cat="engine", phase=PHASE_WORKERS, key=w, lane=w,
                parent=launch_span, cost_us=WORKER_OVERHEAD_US,
                args={"worker": w, "blocks": [int(b) for b in deal]},
            )
        else:
            worker_ctx = tracer.span("worker")
        with worker_ctx:
            try:
                for b in deal:
                    if cancel is not None:
                        cancel.check()
                    if deadline is not None:
                        deadline.check()
                    if tracer.enabled:
                        block_ctx = tracer.span(
                            "block", cat="engine", key=b,
                            cost_us=BLOCK_OVERHEAD_US, args={"block": int(b)},
                        )
                    else:
                        block_ctx = tracer.span("block")
                    with block_ctx:
                        if injector is not None:
                            injector.on_block(device_ordinal, b)
                        run_block(b, ledgers[w])
                    if progress is not None:
                        progress(device_ordinal, b)
            except WorkerCrashError as crash:
                crash.worker = w
                crashes[w] = crash
            finally:
                set_active(None)

    try:
        with ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="gpusim-block"
        ) as pool:
            futures = [pool.submit(worker_fn, w) for w in range(num_workers)]
            for f in futures:
                f.result()
        crashed = [w for w in range(num_workers) if crashes[w] is not None]
        recovered = 0
        if crashed:
            recovered = _recover_crashes(
                session, blocks, num_workers, crashed, crashes, ledgers,
                run_block, set_active, injector, device_ordinal,
                crash_recovery, tracer, progress=progress,
            )
        if tracer.enabled:
            merge_ctx = tracer.span(
                "merge", cat="engine", phase=PHASE_MERGE,
                cost_us=MERGE_OVERHEAD_US,
                args={"arrays": len(arrays), "workers": num_workers},
            )
        else:
            merge_ctx = tracer.span("merge")
        with merge_ctx:
            session.merge(injector=injector, device_ordinal=device_ordinal)
    finally:
        session.detach()
    merged = AccessCounters()
    for ledger in ledgers:
        merged.merge(ledger)
    merged.recoveries += recovered
    return merged


def _recover_crashes(
    session: ParallelSession,
    blocks: List[int],
    num_workers: int,
    crashed: List[int],
    crashes: List[Optional[WorkerCrashError]],
    ledgers: List[AccessCounters],
    run_block: Callable[[int, AccessCounters], None],
    set_active: Callable[[Optional[AccessCounters]], None],
    injector: "Optional[FaultInjector]",
    device_ordinal: int,
    crash_recovery: Optional[CrashRecovery],
    tracer=None,
    progress=None,
) -> int:
    """Discard crashed workers' shards and re-run only their block ranges.

    Recovery runs in the calling thread under fresh worker ids (appended
    after the survivors, so the deterministic worker-order reduction is
    preserved).  Raises the first crash if no recovery policy is attached
    or its retry budget is exhausted.  Returns the number of crashes
    absorbed.
    """
    # every block dealt to a crashed worker is lost with its shard — even
    # the ones it completed before crashing — so the pending range is the
    # worker's whole strided deal
    pending: List[int] = sorted(
        b for w in crashed for b in blocks[w::num_workers]
    )
    first = crashes[crashed[0]]
    assert first is not None
    if crash_recovery is None:
        first.pending_blocks = pending
        raise first
    tracer = tracer if tracer is not None else NULL_TRACER
    for w in crashed:
        session.drop_worker(w)
        ledgers[w] = AccessCounters()  # its charges died with its shard
    recovered = 0
    attempt = 0
    while pending:
        if attempt > crash_recovery.max_retries:
            first.pending_blocks = pending
            raise first
        recovery_worker = num_workers + attempt
        session.enter_worker(recovery_worker)
        ledger = AccessCounters()
        ledgers.append(ledger)
        set_active(ledger)
        done: List[int] = []
        if tracer.enabled:
            recovery_ctx = tracer.span(
                "recovery", cat="resilience", phase=PHASE_RECOVERY,
                key=attempt, cost_us=WORKER_OVERHEAD_US,
                args={
                    "attempt": attempt,
                    "blocks": [int(b) for b in pending],
                    "workers_lost": [int(w) for w in crashed],
                },
            )
        else:
            recovery_ctx = tracer.span("recovery")
        with recovery_ctx:
            try:
                for b in pending:
                    if tracer.enabled:
                        block_ctx = tracer.span(
                            "block", cat="engine", key=b,
                            cost_us=BLOCK_OVERHEAD_US, args={"block": int(b)},
                        )
                    else:
                        block_ctx = tracer.span("block")
                    with block_ctx:
                        if injector is not None:
                            injector.on_block(device_ordinal, b)
                        run_block(b, ledger)
                    done.append(b)
                    if progress is not None:
                        progress(device_ordinal, b)
                crash_recovery.record({
                    "action": "re-executed-blocks",
                    "device": device_ordinal,
                    "blocks": list(pending),
                    "workers_lost": list(crashed),
                    "attempt": attempt,
                })
                recovered = len(crashed)
                pending = []
            except WorkerCrashError as crash:
                # crashed again during recovery: drop this recovery shard
                # too and retry the still-missing range on the next attempt
                session.drop_worker(recovery_worker)
                ledgers.pop()
                first = crash
                first.worker = recovery_worker
            finally:
                set_active(None)
        attempt += 1
    return recovered
