"""Deterministic fault injection for the simulator.

The ROADMAP's north star is a production-scale system, and production
means failures: allocation errors, crashed workers, corrupted transfers,
stragglers, dead devices.  This module makes those failures *first-class
simulated events* so the resilience layer (:mod:`repro.core.resilience`)
can be tested exhaustively and deterministically.

Design rules:

* **Well-defined injection points.**  Faults fire only at named hooks the
  simulator already passes through — :meth:`FaultInjector.on_launch`
  (kernel launch on a device), :meth:`FaultInjector.on_block` (one block
  starting on a parallel worker), :meth:`FaultInjector.on_merge` (the
  shard reduction folding privatized output back into device memory).
* **Determinism.**  A :class:`FaultPlan` is an explicit list of
  :class:`FaultSpec` triggers plus a seed.  The same plan produces the
  same fault sequence, byte for byte: trigger matching is by explicit
  (device, launch, block) coordinates, and the only randomness — which
  output element a corruption hits, backoff jitter — comes from the
  plan-seeded generator.
* **No policy.**  The injector only *breaks* things.  Retry, degradation,
  failover and verification live in :mod:`repro.core.resilience`.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..obs.tracer import NULL_TRACER
from .errors import (
    DeviceAllocationError,
    LinkTransferError,
    NodeLostError,
    SharedMemoryError,
    TransientFault,
    WorkerCrashError,
)


class FaultKind(enum.Enum):
    """The failure modes the simulator can inject."""

    #: transient :class:`InjectedAllocationFailure` on a kernel launch —
    #: models a device briefly out of memory (fragmentation, co-tenant).
    ALLOC_TRANSIENT = "alloc-transient"
    #: :class:`~repro.gpusim.errors.SharedMemoryError` on a kernel launch —
    #: models a shared-memory overflow / misconfigured dynamic allocation.
    SHM_OVERFLOW = "shm-overflow"
    #: :class:`~repro.gpusim.errors.WorkerCrashError` as a parallel worker
    #: starts a block — the block's shard effects are lost mid-flight.
    WORKER_CRASH = "worker-crash"
    #: a worker sleeps ``delay_seconds`` before a block — a straggler.
    STRAGGLER = "straggler"
    #: one element of one merged output shard is corrupted (NaN poison for
    #: float buffers, a flipped high bit for integer buffers).
    CORRUPT_SHARD = "corrupt-shard"
    #: every launch on the device fails — the device is gone for good.
    DEVICE_DEAD = "device-dead"
    #: a cluster node stops answering heartbeats — permanent node loss;
    #: its unfinished anchor rows must re-stripe onto the survivors.
    NODE_DEAD = "node-dead"
    #: a cluster node answers heartbeats ``delay_seconds`` late — a
    #: straggler node.  Below the heartbeat timeout the delay is absorbed
    #: into the node's simulated time; above it, the node is evicted.
    NODE_STRAGGLER = "node-straggler"
    #: a merge transfer over one cluster link fails transiently
    #: (:class:`~repro.gpusim.errors.LinkTransferError`, seeded and
    #: count-limited — the per-link retry ladder absorbs it).
    LINK_FLAKY = "link-flaky"
    #: one cluster link's bandwidth degrades by ``factor`` for the rest of
    #: the run — merge transfers over it get slower, outputs unchanged.
    LINK_DEGRADED = "link-degraded"


def link_key(a: int, b: int) -> str:
    """Canonical undirected-link name ``"a-b"`` with ``a < b`` — the key
    :class:`FaultSpec` link coordinates and degraded-link bookkeeping use,
    so a fault planted on a link matches transfers in either direction."""
    lo, hi = (a, b) if a <= b else (b, a)
    return f"{lo}-{hi}"


class InjectedAllocationFailure(TransientFault, DeviceAllocationError):
    """A transient allocation failure planted by the fault injector.

    Inherits both :class:`TransientFault` (the supervisor retries it) and
    :class:`DeviceAllocationError` (callers that only know the ordinary
    hierarchy still classify it correctly).
    """


@dataclass
class FaultSpec:
    """One planned fault trigger.

    ``None`` coordinates are wildcards; ``count=None`` means the trigger
    never exhausts (used for :data:`FaultKind.DEVICE_DEAD`).  For
    :data:`FaultKind.WORKER_CRASH` / :data:`FaultKind.STRAGGLER` pin
    ``block`` explicitly — worker threads race, and a wildcard block would
    make the firing order (hence the fault sequence) nondeterministic.
    """

    kind: FaultKind
    device: Optional[int] = None
    launch: Optional[int] = None
    block: Optional[int] = None
    count: Optional[int] = 1
    delay_seconds: float = 0.002
    #: cluster-node coordinate for the ``NODE_*`` kinds (``None`` elsewhere)
    node: Optional[int] = None
    #: cluster-link coordinate ``"a-b"`` with ``a < b`` for the ``LINK_*``
    #: kinds — links are undirected, so both transfer directions match
    link: Optional[str] = None
    #: bandwidth slowdown for :data:`FaultKind.LINK_DEGRADED`
    factor: float = 4.0

    def matches(self, **coords: "Optional[int | str]") -> bool:
        for name, got in coords.items():
            want = getattr(self, name)
            if want is not None and want != got:
                return False
        return True


@dataclass
class FaultEvent:
    """One fault that actually fired (the injector's flight recorder)."""

    kind: FaultKind
    device: int
    launch: Optional[int] = None
    block: Optional[int] = None
    array: Optional[str] = None
    index: Optional[int] = None
    detail: str = ""
    node: Optional[int] = None
    link: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind.value,
            "device": self.device,
            "launch": self.launch,
            "block": self.block,
            "array": self.array,
            "index": self.index,
            "detail": self.detail,
            "node": self.node,
            "link": self.link,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "FaultEvent":
        return cls(
            kind=FaultKind(d["kind"]),
            device=int(d["device"]),
            launch=d.get("launch"),
            block=d.get("block"),
            array=d.get("array"),
            index=d.get("index"),
            detail=d.get("detail", ""),
            node=d.get("node"),
            link=d.get("link"),
        )


class FaultPlan:
    """An ordered list of fault triggers plus the seed that fixes every
    remaining degree of freedom (corruption targets, backoff jitter)."""

    def __init__(self, specs: Optional[List[FaultSpec]] = None, seed: int = 0):
        self.specs: List[FaultSpec] = list(specs or [])
        self.seed = int(seed)

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:
        kinds = ", ".join(s.kind.value for s in self.specs)
        return f"FaultPlan(seed={self.seed}, [{kinds}])"

    @classmethod
    def chaos(
        cls,
        seed: int,
        num_devices: int = 1,
        crash_block: int = 1,
        straggler: bool = False,
    ) -> "FaultPlan":
        """The acceptance-test plan: one transient allocation failure, one
        worker crash, one corrupted output shard and (multi-device) one
        dead device, with the victims chosen by the seed.

        Deterministic: the same ``(seed, num_devices)`` always yields the
        same plan, hence the same fault sequence under the same run
        configuration.
        """
        rng = np.random.default_rng(seed)
        plan = cls(seed=seed)
        # choose the dead device first (multi-device only) so the other
        # faults can target survivors — a dead device never runs a block,
        # so faults aimed at it would silently not fire.  The victim comes
        # from the tail: device 0 always survives as a failover target.
        dead_dev = int(rng.integers(1, num_devices)) if num_devices > 1 else None
        survivors = [d for d in range(max(1, num_devices)) if d != dead_dev]
        alloc_dev = int(rng.choice(survivors))
        plan.add(FaultSpec(FaultKind.ALLOC_TRANSIENT, device=alloc_dev, launch=0))
        # device wildcards: block 1 lands on exactly one device per run
        # configuration, and the first mutated-shard merge is likewise
        # unique, so firing stays deterministic
        plan.add(FaultSpec(FaultKind.WORKER_CRASH, block=crash_block))
        plan.add(FaultSpec(FaultKind.CORRUPT_SHARD))
        if straggler:
            plan.add(FaultSpec(FaultKind.STRAGGLER, block=0))
        if dead_dev is not None:
            plan.add(FaultSpec(FaultKind.DEVICE_DEAD, device=dead_dev, count=None))
        return plan

    @classmethod
    def cluster_chaos(
        cls,
        seed: int,
        num_nodes: int,
        heartbeat_timeout: float = 0.25,
    ) -> "FaultPlan":
        """The cluster acceptance-test plan: one permanent node loss, one
        flaky link (two transient transfer failures — inside the default
        retry budget), one degraded link and one straggler node whose
        heartbeat delay stays *below* the eviction timeout, with victims
        chosen by the seed.

        Node 0 always survives: it is the coordinator of the star
        topology, the degradation floor every other topology falls back
        to.  Deterministic: the same ``(seed, num_nodes)`` always yields
        the same plan.
        """
        rng = np.random.default_rng(seed)
        plan = cls(seed=seed)
        if num_nodes < 2:
            return plan
        dead_node = int(rng.integers(1, num_nodes))
        survivors = [m for m in range(num_nodes) if m != dead_node]
        # flaky + degraded links chosen among survivor pairs so the faults
        # actually fire (a dead node's links never carry a transfer)
        if len(survivors) >= 2:
            a, b = sorted(
                int(i) for i in rng.choice(survivors, size=2, replace=False)
            )
            plan.add(FaultSpec(FaultKind.LINK_FLAKY, link=link_key(a, b),
                               count=2))
            c, d = sorted(
                int(i) for i in rng.choice(survivors, size=2, replace=False)
            )
            plan.add(FaultSpec(FaultKind.LINK_DEGRADED, link=link_key(c, d),
                               factor=4.0))
        straggler = int(rng.choice(survivors))
        plan.add(FaultSpec(FaultKind.NODE_STRAGGLER, node=straggler,
                           delay_seconds=0.5 * heartbeat_timeout))
        plan.add(FaultSpec(FaultKind.NODE_DEAD, node=dead_node, count=None))
        return plan


#: Integer corruption flips this bit; high enough to break any histogram
#: mass or ticket count, low enough to stay in int32 range.
_CORRUPT_BIT = 1 << 30


class FaultInjector:
    """Executes a :class:`FaultPlan` at the simulator's injection hooks.

    Thread-safe: parallel launch workers call :meth:`on_block`
    concurrently.  All bookkeeping (trigger consumption, the event log,
    the corruption RNG) is guarded by one lock, and block-targeted
    triggers are pinned to explicit block ids so concurrency cannot
    reorder the fault sequence.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        self.events: List[FaultEvent] = []
        self._remaining: List[Optional[int]] = [s.count for s in plan.specs]
        #: link name -> bandwidth slowdown factor; links degrade once and
        #: stay degraded, so the factor lives here rather than re-matching
        #: the (consumed) trigger on every transfer
        self._degraded_links: Dict[str, float] = {}
        self._lock = threading.Lock()
        #: execution tracer; fired faults land as ``fault:<kind>`` instant
        #: events at the trace position where they bit (the supervisor
        #: attaches a live tracer; defaults to the no-op tracer).
        self.tracer = NULL_TRACER

    # -- bookkeeping ---------------------------------------------------------
    def _take(self, kind: FaultKind, **coords: Optional[int]) -> Optional[FaultSpec]:
        """Consume and return the first live trigger matching ``coords``."""
        with self._lock:
            for i, spec in enumerate(self.plan.specs):
                if spec.kind is not kind:
                    continue
                left = self._remaining[i]
                if left is not None and left <= 0:
                    continue
                if not spec.matches(**coords):
                    continue
                if left is not None:
                    self._remaining[i] = left - 1
                return spec
        return None

    def _record(self, event: FaultEvent) -> None:
        with self._lock:
            self.events.append(event)
        if self.tracer.enabled:
            self.tracer.instant(
                "fault:" + event.kind.value, cat="fault",
                args=event.as_dict(),
            )

    @property
    def injected_count(self) -> int:
        return len(self.events)

    # -- checkpoint state transport -------------------------------------------
    def state(self) -> Dict[str, object]:
        """Full picklable cursor: fired events, remaining trigger budgets
        and the corruption RNG state.  Persisted by the checkpoint layer
        after each chunk so a resumed run replays the *remaining* faults
        exactly — already-consumed triggers stay consumed and the
        corruption stream continues where it left off."""
        with self._lock:
            return {
                "events": list(self.events),
                "remaining": list(self._remaining),
                "rng_state": self.rng.bit_generator.state,
                "degraded_links": dict(self._degraded_links),
            }

    def restore(self, state: Dict[str, object]) -> None:
        """Install a cursor previously captured by :meth:`state` (the
        injector must have been built from the same plan)."""
        remaining = state["remaining"]
        if len(remaining) != len(self.plan.specs):
            raise ValueError(
                f"fault cursor has {len(remaining)} trigger budget(s) but "
                f"the plan has {len(self.plan.specs)} spec(s) — was the "
                "checkpoint written under a different fault plan?"
            )
        with self._lock:
            self.events = list(state["events"])
            self._remaining = list(remaining)
            self.rng.bit_generator.state = state["rng_state"]
            # absent in cursors written before link faults existed
            self._degraded_links = dict(state.get("degraded_links", {}))

    # -- cross-process state transport ---------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Bookkeeping snapshot taken in the parent before forking process
        workers; children ship back only the delta relative to it."""
        with self._lock:
            return {
                "events": len(self.events),
                "remaining": list(self._remaining),
            }

    def delta_since(self, snapshot: Dict[str, object]) -> Dict[str, object]:
        """Child-side: the events recorded and triggers consumed by this
        process since ``snapshot`` (picklable, order-preserving)."""
        with self._lock:
            events = list(self.events[snapshot["events"]:])
            consumed = [
                (before - after) if before is not None else 0
                for before, after in zip(
                    snapshot["remaining"], self._remaining
                )
            ]
        return {"events": events, "consumed": consumed}

    def apply_delta(self, delta: Dict[str, object]) -> None:
        """Parent-side: fold one process worker's delta in.  Deltas are
        applied in worker order — and before any crash recovery runs — so
        the merged event log and the remaining trigger budgets match what
        a thread-pool launch of the same plan would leave behind."""
        with self._lock:
            self.events.extend(delta["events"])
            for i, used in enumerate(delta["consumed"]):
                if used and self._remaining[i] is not None:
                    self._remaining[i] = max(0, self._remaining[i] - used)

    # -- hooks ---------------------------------------------------------------
    def on_launch(self, device: int, launch: int) -> None:
        """Called by :meth:`Device.launch` before running any block.

        May raise :class:`InjectedAllocationFailure` (transient),
        :class:`DeviceAllocationError` (dead device — permanent) or
        :class:`SharedMemoryError` (overflow).
        """
        if self._take(FaultKind.DEVICE_DEAD, device=device) is not None:
            self._record(FaultEvent(FaultKind.DEVICE_DEAD, device, launch=launch,
                                    detail="device unreachable"))
            raise DeviceAllocationError(
                f"simulated device {device} is dead (fault injection)"
            )
        if self._take(FaultKind.ALLOC_TRANSIENT, device=device, launch=launch) is not None:
            self._record(FaultEvent(FaultKind.ALLOC_TRANSIENT, device, launch=launch,
                                    detail="transient allocation failure"))
            raise InjectedAllocationFailure(
                f"transient allocation failure on device {device}, "
                f"launch {launch} (fault injection)"
            )
        if self._take(FaultKind.SHM_OVERFLOW, device=device, launch=launch) is not None:
            self._record(FaultEvent(FaultKind.SHM_OVERFLOW, device, launch=launch,
                                    detail="shared-memory overflow"))
            raise SharedMemoryError(
                f"injected shared-memory overflow on device {device}, "
                f"launch {launch}"
            )

    def on_block(self, device: int, block: int) -> None:
        """Called by the parallel launch engine as a worker picks up a
        block.  May sleep (straggler) or raise :class:`WorkerCrashError`."""
        spec = self._take(FaultKind.STRAGGLER, device=device, block=block)
        if spec is not None:
            self._record(FaultEvent(FaultKind.STRAGGLER, device, block=block,
                                    detail=f"delayed {spec.delay_seconds:.3f}s"))
            time.sleep(spec.delay_seconds)
        if self._take(FaultKind.WORKER_CRASH, device=device, block=block) is not None:
            self._record(FaultEvent(FaultKind.WORKER_CRASH, device, block=block,
                                    detail="worker thread crashed mid-block"))
            raise WorkerCrashError(
                f"injected worker crash on device {device}, block {block}",
                device=device,
                block=block,
            )

    def on_merge(self, device: int, arrays: Dict[str, np.ndarray]) -> None:
        """Called once per parallel launch after the shard reduction, with
        every output buffer that was mutated.  May corrupt one element of
        one buffer in place: NaN poison for float buffers (caught by
        finiteness checks downstream), a flipped high bit for integer
        buffers (caught by mass/ticket reconciliation)."""
        if not arrays:
            return
        if self._take(FaultKind.CORRUPT_SHARD, device=device) is None:
            return
        with self._lock:
            name = sorted(arrays)[int(self.rng.integers(len(arrays)))]
            arr = arrays[name]
            idx = int(self.rng.integers(arr.size))
        if np.issubdtype(arr.dtype, np.floating):
            arr.flat[idx] = np.nan
            detail = "NaN poison"
        else:
            arr.flat[idx] ^= _CORRUPT_BIT
            detail = f"bit {int(np.log2(_CORRUPT_BIT))} flipped"
        self._record(FaultEvent(FaultKind.CORRUPT_SHARD, device, array=name,
                                index=idx, detail=detail))

    # -- cluster hooks --------------------------------------------------------
    def on_node(self, node: int) -> float:
        """Called by the cluster supervisor as a node's heartbeat is
        checked before its stripe runs.  Raises
        :class:`~repro.gpusim.errors.NodeLostError` for a dead node;
        returns the straggler heartbeat delay in *simulated* seconds
        (0.0 when healthy) — never a wall-clock sleep, because cluster
        timing is entirely modelled."""
        if self._take(FaultKind.NODE_DEAD, node=node) is not None:
            self._record(FaultEvent(FaultKind.NODE_DEAD, device=-1, node=node,
                                    detail="node stopped answering heartbeats"))
            raise NodeLostError(
                f"simulated cluster node {node} is lost (fault injection)",
                node=node,
            )
        spec = self._take(FaultKind.NODE_STRAGGLER, node=node)
        if spec is not None:
            self._record(FaultEvent(
                FaultKind.NODE_STRAGGLER, device=-1, node=node,
                detail=f"heartbeat {spec.delay_seconds:.3f}s late"))
            return float(spec.delay_seconds)
        return 0.0

    def on_transfer(self, src: int, dst: int) -> None:
        """Called by the cluster merge before each priced link transfer.
        May raise :class:`~repro.gpusim.errors.LinkTransferError`
        (transient — the per-link retry ladder absorbs it)."""
        key = link_key(src, dst)
        if self._take(FaultKind.LINK_FLAKY, link=key) is not None:
            self._record(FaultEvent(FaultKind.LINK_FLAKY, device=-1, link=key,
                                    detail="merge transfer failed"))
            raise LinkTransferError(
                f"injected transfer failure on cluster link {key}",
                src=src, dst=dst,
            )

    def link_factor(self, src: int, dst: int) -> float:
        """Bandwidth slowdown factor for one link (1.0 when healthy).
        The first call that matches a live ``LINK_DEGRADED`` trigger
        consumes it and pins the factor for the rest of the run."""
        key = link_key(src, dst)
        spec = self._take(FaultKind.LINK_DEGRADED, link=key)
        if spec is not None:
            with self._lock:
                self._degraded_links[key] = float(spec.factor)
            self._record(FaultEvent(
                FaultKind.LINK_DEGRADED, device=-1, link=key,
                detail=f"bandwidth degraded {spec.factor:g}x"))
        with self._lock:
            return self._degraded_links.get(key, 1.0)


def as_injector(
    faults: "FaultInjector | FaultPlan | int | None",
    num_devices: int = 1,
    cluster_nodes: Optional[int] = None,
) -> Optional[FaultInjector]:
    """Coerce the user-facing ``faults`` argument (seed, plan or injector)
    into a live injector.  An ``int`` builds the chaos plan for that seed
    — the classic device-level plan, plus the node-level
    :meth:`FaultPlan.cluster_chaos` specs when ``cluster_nodes`` says a
    simulated cluster is active."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultPlan):
        return FaultInjector(faults)
    plan = FaultPlan.chaos(int(faults), num_devices=num_devices)
    if cluster_nodes is not None and cluster_nodes > 1:
        plan.specs.extend(
            FaultPlan.cluster_chaos(int(faults), cluster_nodes).specs
        )
    return FaultInjector(plan)
