"""Analytical atomic-contention estimates.

When a warp's 32 lanes issue atomic updates, lanes targeting the same
address serialize.  For histogram-style outputs the expected serialization
depends on the bin-occupancy distribution: the paper's Fig. 5 shows SDH
degrading when the bucket count is small because "the many threads in the
block always compete for accessing an output element".

:func:`expected_max_multiplicity` estimates E[max bin multiplicity] for
``m`` lanes throwing into bins with probabilities ``probs`` — the mean
conflict degree the functional simulator measures per warp issue.  The
estimate combines the birthday-collision regime (sparse) with a
Poisson-tail balls-in-bins bound (dense); tests validate it against Monte
Carlo sampling of the true process.
"""

from __future__ import annotations

import math

import numpy as np


def collision_rate(probs: np.ndarray) -> float:
    """Probability two independent throws land in the same bin (sum p_i^2)."""
    p = np.asarray(probs, dtype=np.float64)
    if p.size == 0:
        return 1.0
    total = p.sum()
    if total <= 0:
        return 1.0
    p = p / total
    return float((p * p).sum())


def effective_bins(probs: np.ndarray) -> float:
    """Inverse participation ratio: the 'uniform-equivalent' bin count."""
    return 1.0 / collision_rate(probs)


def expected_max_multiplicity(probs: np.ndarray, m: int = 32) -> float:
    """E[max multiplicity] of ``m`` throws into bins distributed ``probs``.

    The bins are collapsed to their uniform equivalent ``k_eff`` (inverse
    participation ratio), bin occupancies approximated as iid
    Poisson(mu = m / k_eff), and the expectation of their maximum computed
    exactly from the order-statistics identity
    ``E[max] = sum_{j>=0} (1 - F(j)^k)``.  Validated against Monte Carlo
    in tests across the sparse (k >> m) and dense (k < m) regimes.
    """
    if m <= 1:
        return 1.0
    k_eff = max(effective_bins(np.asarray(probs)), 1.0)
    mu = m / k_eff
    js = np.arange(0, m)
    # Poisson CDF at js via the regularized upper incomplete gamma
    from scipy.stats import poisson

    cdf = poisson.cdf(js, mu)
    expectation = float(np.sum(1.0 - np.power(cdf, k_eff)))
    # the multinomial max is at least the mean occupancy of the fullest
    # bin; this also repairs the k_eff -> 1 corner the Poisson truncation
    # underestimates (all m throws land in the single bin)
    expectation = max(expectation, mu)
    return float(min(max(expectation, 1.0), m))


def monte_carlo_max_multiplicity(
    probs: np.ndarray, m: int = 32, trials: int = 2000, seed: int = 0
) -> float:
    """Monte-Carlo reference for :func:`expected_max_multiplicity`."""
    rng = np.random.default_rng(seed)
    p = np.asarray(probs, dtype=np.float64)
    p = p / p.sum()
    draws = rng.choice(p.size, size=(trials, m), p=p)
    maxima = np.empty(trials)
    for t in range(trials):
        maxima[t] = np.bincount(draws[t], minlength=p.size).max()
    return float(maxima.mean())


def warp_conflict_degrees(
    bin_matrix: np.ndarray, warp_size: int = 32
) -> tuple[float, int]:
    """Exact (summed degree, issue count) for a (threads, iterations) bin
    matrix: one warp-level atomic issue per (warp, iteration) cell group.

    Vectorized: sort each warp's lane targets per iteration and count the
    longest equal run.
    """
    bins = np.asarray(bin_matrix)
    if bins.ndim != 2:
        raise ValueError("bin matrix must be (threads, iterations)")
    threads, iters = bins.shape
    if threads % warp_size != 0:
        pad = warp_size - threads % warp_size
        filler = np.arange(pad)[:, None] - (1 + np.arange(iters))[None, :] * warp_size
        bins = np.vstack([bins, filler])  # distinct negative sentinels: no conflicts
        threads += pad
    grouped = bins.reshape(threads // warp_size, warp_size, iters)
    s = np.sort(grouped, axis=1)
    runs = np.ones_like(s)
    for lane in range(1, warp_size):
        same = s[:, lane, :] == s[:, lane - 1, :]
        runs[:, lane, :] = np.where(same, runs[:, lane - 1, :] + 1, 1)
    degrees = runs.max(axis=1)  # (warps, iterations)
    return float(degrees.sum()), int(degrees.size)


def warp_conflict_degrees_dense(
    bin_matrix: np.ndarray,
    warp_size: int = 32,
    lane_offsets: np.ndarray | None = None,
) -> tuple[float, int]:
    """Same statistic as :func:`warp_conflict_degrees`, tuned for the large
    matrices the batched engine produces.

    Lanes are transposed next to each other so the sort runs over a
    contiguous axis, and the per-lane Python loop is replaced by a
    prefix-sum run-length computation (a handful of full-array passes in a
    narrow dtype).  Returns exactly the per-(warp, issue) maxima sums of
    the reference implementation.

    ``lane_offsets`` (one non-negative value per thread row) is added to
    each lane's targets *inside the transpose buffer*, so multi-copy
    privatized outputs can profile conflicts on composite (copy, bin) keys
    without materializing the offset matrix.  Equivalent to calling with
    ``bin_matrix + lane_offsets[:, None]``.
    """
    bins = np.asarray(bin_matrix)
    if bins.ndim != 2:
        raise ValueError("bin matrix must be (threads, iterations)")
    threads, iters = bins.shape
    orig_threads = threads
    if threads % warp_size != 0:
        pad = warp_size - threads % warp_size
        filler = (
            np.arange(pad)[:, None]
            - (1 + np.arange(iters))[None, :] * warp_size
        )
        if np.issubdtype(bins.dtype, np.integer) and (
            iters == 0
            or filler[-1, -1] >= np.iinfo(bins.dtype).min
        ):
            filler = filler.astype(bins.dtype)
        bins = np.vstack([bins, filler])
        threads += pad
    if warp_size == 1 or iters == 0:
        # single-lane issues can never conflict, offsets notwithstanding
        return float(bins.size), int(bins.size)
    # (warps * iters, warp_size): each issue's lane targets contiguous
    issues_mat = np.ascontiguousarray(
        bins.reshape(threads // warp_size, warp_size, iters).swapaxes(1, 2)
    ).reshape(-1, warp_size)
    if lane_offsets is not None:
        offs = np.asarray(lane_offsets, dtype=issues_mat.dtype)
        if offs.shape != (orig_threads,):
            raise ValueError("lane_offsets must have one entry per thread")
        if orig_threads != threads:  # padded sentinel lanes stay offset-free
            offs = np.concatenate(
                [offs, np.zeros(threads - orig_threads, dtype=offs.dtype)]
            )
        issues_mat.reshape(threads // warp_size, iters, warp_size)[...] += (
            offs.reshape(threads // warp_size, 1, warp_size)
        )
    issues_mat.sort(axis=-1)
    n_issues = issues_mat.shape[0]
    # Max multiplicity per sorted row = 1 + its longest adjacent-equal
    # run.  Pack each row's adjacent-equal mask into one machine word and
    # smear it: AND-ing a word with itself shifted right by one shortens
    # every run of set bits by one, so the count of words still nonzero
    # after k smears is the number of issues whose longest run exceeds k
    # — and summing those counts over k reproduces the per-issue maxima
    # sum exactly (sum of max-run lengths == sum over k of #{run > k}).
    # The loop therefore runs longest-run times over a single word per
    # issue instead of warp_size times over three per-issue vectors, and
    # a conflict-free matrix costs one reduction.
    eq = issues_mat[:, 1:] == issues_mat[:, :-1]
    if not eq.any():
        # conflict-free: every issue's degree is 1
        return float(n_issues), int(n_issues)
    if warp_size <= 65:  # the (warp_size - 1)-bit mask fits one word
        packed = np.packbits(eq, axis=1, bitorder="little")
        width = 4 if warp_size <= 33 else 8
        short = -packed.shape[1] % width
        if short:  # pad bytes are zero: they never extend a run
            packed = np.pad(packed, ((0, 0), (0, short)))
        words = packed.view(f"<u{width}").ravel()
        total = n_issues
        while True:
            alive = int(np.count_nonzero(words))
            if not alive:
                break
            total += alive
            words &= words >> 1  # every run loses its lowest bit
        return float(total), int(n_issues)
    # exotic warp widths beyond one machine word: lane-major scan with
    # three thin in-place ops per lane (`run` zeroes where the mask breaks)
    run = np.zeros(n_issues, dtype=np.int32)
    best = np.zeros(n_issues, dtype=np.int32)
    for lane_eq in eq.T:
        run += 1
        run *= lane_eq
        np.maximum(best, run, out=best)
    return float(n_issues + int(best.sum())), int(n_issues)
