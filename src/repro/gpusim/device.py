"""The simulated device: allocations, transfers and kernel launches.

Functional kernels run block-serially (CUDA guarantees nothing about
inter-block ordering, and none of the paper's kernels communicate between
blocks except through atomics, which are order-independent for the
commutative updates used here).  Every launch returns a
:class:`LaunchRecord` carrying the merged access counters, so the
functional path and the analytical path can be compared exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from .counters import AccessCounters, MemSpace
from .errors import DeviceAllocationError
from .grid import BlockContext, LaunchConfig
from .memory import ReadOnlyView, TrackedArray
from .spec import DeviceSpec, TITAN_X

KernelFn = Callable[[BlockContext], None]


@dataclass
class LaunchRecord:
    """Outcome of one functional kernel launch."""

    kernel_name: str
    config: LaunchConfig
    counters: AccessCounters
    blocks_run: int
    wall_seconds: float  # host-side simulation time, NOT simulated GPU time
    sync_counts: List[int] = field(default_factory=list)

    @property
    def max_shared_bytes(self) -> int:
        return self._max_shared

    _max_shared: int = 0


class _ActiveCounters:
    """Forwarding ledger: device-global arrays record into whatever counter
    set is *active* — the device ledger between launches, the launch's own
    ledger while a kernel runs — so per-launch records include the global
    traffic those arrays generate."""

    __slots__ = ("_device",)

    def __init__(self, device: "Device") -> None:
        self._device = device

    def _target(self) -> AccessCounters:
        return self._device._active

    def add_read(self, space: MemSpace, n: int = 1) -> None:
        self._target().add_read(space, n)

    def add_write(self, space: MemSpace, n: int = 1) -> None:
        self._target().add_write(space, n)

    def add_atomic(self, space: MemSpace, n: int = 1) -> None:
        self._target().add_atomic(space, n)

    def add_conflict_sample(self, degree: float, issues: int = 1) -> None:
        self._target().add_conflict_sample(degree, issues)


class Device:
    """A simulated GPU with tracked global memory."""

    def __init__(self, spec: DeviceSpec = TITAN_X) -> None:
        self.spec = spec
        self.counters = AccessCounters()
        self._active = self.counters
        self._sink = _ActiveCounters(self)
        self._allocated = 0
        self._allocations: Dict[str, TrackedArray] = {}
        self.launches: List[LaunchRecord] = []

    # -- memory management ---------------------------------------------------
    def alloc(self, shape, dtype=np.float32, name: str = "", zero: bool = True) -> TrackedArray:
        """Allocate tracked global memory on the device."""
        arr = np.zeros(shape, dtype=dtype)
        if self._allocated + arr.nbytes > self.spec.global_mem_bytes:
            raise DeviceAllocationError(
                f"allocation of {arr.nbytes} B exceeds remaining global "
                f"memory ({self.spec.global_mem_bytes - self._allocated} B free)"
            )
        self._allocated += arr.nbytes
        name = name or f"gmem{len(self._allocations)}"
        tracked = TrackedArray(arr, MemSpace.GLOBAL, self._sink, name=name)
        self._allocations[name] = tracked
        return tracked

    def to_device(self, host: np.ndarray, name: str = "") -> TrackedArray:
        """Host-to-device copy (DMA over PCI-E; not counted as kernel traffic)."""
        arr = self.alloc(host.shape, dtype=host.dtype, name=name, zero=False)
        arr.data[...] = host
        return arr

    def to_host(self, arr: TrackedArray) -> np.ndarray:
        """Device-to-host copy of a result buffer."""
        return np.array(arr.data, copy=True)

    def free(self, arr: TrackedArray) -> None:
        for name, a in list(self._allocations.items()):
            if a is arr:
                del self._allocations[name]
                self._allocated -= arr.nbytes
                return
        raise DeviceAllocationError(f"{arr!r} is not a live device allocation")

    def readonly(self, arr: TrackedArray) -> ReadOnlyView:
        """Bind a global allocation to the read-only data cache path
        (the ``const __restrict__`` trick from Section IV-A)."""
        return ReadOnlyView(arr, counters=self._sink)

    @property
    def bytes_allocated(self) -> int:
        return self._allocated

    # -- execution -------------------------------------------------------------
    def launch(
        self,
        kernel: KernelFn,
        config: LaunchConfig,
        *,
        name: Optional[str] = None,
    ) -> LaunchRecord:
        """Run ``kernel`` once per block, merging access counters."""
        config.validate(self.spec)
        t0 = time.perf_counter()
        merged = AccessCounters()
        sync_counts: List[int] = []
        max_shared = 0
        self._active = merged  # device-global traffic lands on this launch
        try:
            for b in range(config.grid_dim):
                ctx = BlockContext(
                    spec=self.spec, config=config, block_id=b, counters=merged
                )
                kernel(ctx)
                sync_counts.append(ctx.sync_count)
                max_shared = max(max_shared, ctx.shared_bytes_used)
        finally:
            self._active = self.counters
        self.counters.merge(merged)
        record = LaunchRecord(
            kernel_name=name or getattr(kernel, "__name__", "kernel"),
            config=config,
            counters=merged,
            blocks_run=config.grid_dim,
            wall_seconds=time.perf_counter() - t0,
            sync_counts=sync_counts,
        )
        record._max_shared = max_shared
        self.launches.append(record)
        return record

    def reset_counters(self) -> None:
        self.counters = AccessCounters()
        self._active = self.counters
        self.launches.clear()
