"""The simulated device: allocations, transfers and kernel launches.

Functional kernels run block-serially (CUDA guarantees nothing about
inter-block ordering, and none of the paper's kernels communicate between
blocks except through atomics, which are order-independent for the
commutative updates used here).  Every launch returns a
:class:`LaunchRecord` carrying the merged access counters, so the
functional path and the analytical path can be compared exactly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.tracer import (
    BLOCK_OVERHEAD_US,
    LAUNCH_OVERHEAD_US,
    NULL_TRACER,
)
from .counters import AccessCounters, MemSpace
from .errors import DeviceAllocationError
from .grid import BlockContext, LaunchConfig
from .memory import ReadOnlyView, TrackedArray
from .parallel import (
    CrashRecovery,
    resolve_backend,
    resolve_workers,
    run_blocks_parallel,
)
from .procpool import HostChannel, run_blocks_process_parallel
from .spec import DeviceSpec, TITAN_X

if TYPE_CHECKING:  # pragma: no cover
    from .faults import FaultInjector

KernelFn = Callable[[BlockContext], None]


@dataclass
class LaunchRecord:
    """Outcome of one functional kernel launch."""

    kernel_name: str
    config: LaunchConfig
    counters: AccessCounters
    blocks_run: int
    wall_seconds: float  # host-side simulation time, NOT simulated GPU time
    sync_counts: List[int] = field(default_factory=list)
    workers: int = 1  # simulator workers (threads or processes) used
    #: bounds-pruning aggregates (a repro.core.bounds.PruneStats) when the
    #: kernel ran with tile pruning enabled, else None
    prune: Optional[Any] = None
    #: cell-list aggregates (a repro.core.cells.CellStats) when the kernel
    #: ran on the uniform-grid cell engine, else None
    cells: Optional[Any] = None
    #: execution engine that actually ran the blocks: "sequential",
    #: "threads" or "processes" (the kernel-level "megabatch" path reports
    #: whichever block engine it rode on)
    backend: str = "sequential"

    @property
    def max_shared_bytes(self) -> int:
        return self._max_shared

    _max_shared: int = 0


class _ActiveCounters:
    """Forwarding ledger: device-global arrays record into whatever counter
    set is *active* — the device ledger between launches, the launch's own
    ledger while a kernel runs — so per-launch records include the global
    traffic those arrays generate.  The active ledger is thread-local, so
    a block-parallel launch routes each worker's global traffic into that
    worker's privatized counters."""

    __slots__ = ("_device",)

    def __init__(self, device: "Device") -> None:
        self._device = device

    def _target(self) -> AccessCounters:
        return self._device._active

    def add_read(self, space: MemSpace, n: int = 1) -> None:
        self._target().add_read(space, n)

    def add_write(self, space: MemSpace, n: int = 1) -> None:
        self._target().add_write(space, n)

    def add_atomic(self, space: MemSpace, n: int = 1) -> None:
        self._target().add_atomic(space, n)

    def add_conflict_sample(self, degree: float, issues: int = 1) -> None:
        self._target().add_conflict_sample(degree, issues)


class Device:
    """A simulated GPU with tracked global memory."""

    def __init__(
        self,
        spec: DeviceSpec = TITAN_X,
        *,
        ordinal: int = 0,
        faults: "Optional[FaultInjector]" = None,
        crash_recovery: Optional[CrashRecovery] = None,
        tracer: Optional[Any] = None,
        deadline: Optional[Any] = None,
        cancel: Optional[Any] = None,
        watchdog: Optional[float] = None,
        on_watchdog: Optional[Callable[[Dict[str, Any]], None]] = None,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.spec = spec
        self.counters = AccessCounters()
        self._tls = threading.local()
        self._sink = _ActiveCounters(self)
        self._allocated = 0
        self._allocations: Dict[str, TrackedArray] = {}
        self.launches: List[LaunchRecord] = []
        #: position of this simulated device in a multi-device plan; the
        #: coordinate fault plans address devices by.
        self.ordinal = ordinal
        #: optional deterministic fault injector (see gpusim.faults).
        self.faults = faults
        #: optional in-launch worker-crash recovery policy; ``None`` means
        #: crashes propagate as :class:`WorkerCrashError`.
        self.crash_recovery = crash_recovery
        #: execution tracer (see :mod:`repro.obs`); defaults to the no-op
        #: :data:`~repro.obs.tracer.NULL_TRACER`, keeping launches
        #: allocation-free unless tracing was requested.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: cooperative lifecycle controls (duck-typed: anything with a
        #: ``check()`` method, e.g. :class:`~repro.core.lifecycle.Deadline`
        #: / :class:`~repro.core.lifecycle.CancelToken`), polled at block
        #: boundaries on every execution backend.
        self.deadline = deadline
        self.cancel = cancel
        #: process-pool hung-worker timeout in wall seconds (``None``
        #: disables the watchdog); workers making no progress for this
        #: long are killed and their block deals re-executed.
        self.watchdog = watchdog
        #: observer called with ``{"workers": [...], "timeout": s}`` when
        #: the watchdog kills hung workers (the supervisor wires this to
        #: the resilience report's lifecycle log).
        self.on_watchdog = on_watchdog
        #: per-block completion hook ``progress(device_ordinal, block_id)``
        #: — the live-telemetry feed (see :mod:`repro.obs.flight`).  Like
        #: the tracer, the disabled path is one ``is not None`` test per
        #: block; callbacks must be cheap and thread-safe (the threads
        #: backend fires them from worker threads, the process backend
        #: from the parent's install loop).
        self.progress = progress
        self._launch_attempts = 0

    def _check_lifecycle(self) -> None:
        """Poll the cooperative cancellation / deadline controls; raises
        their exception at a safe point (no partial merge in flight)."""
        if self.cancel is not None:
            self.cancel.check()
        if self.deadline is not None:
            self.deadline.check()

    @property
    def _active(self) -> AccessCounters:
        """The ledger the calling thread should charge: a launch/worker
        ledger while a kernel runs on this thread, the device ledger
        otherwise."""
        override = getattr(self._tls, "active", None)
        return override if override is not None else self.counters

    def _set_active(self, counters: Optional[AccessCounters]) -> None:
        self._tls.active = counters

    # -- memory management ---------------------------------------------------
    def alloc(self, shape, dtype=np.float32, name: str = "", zero: bool = True) -> TrackedArray:
        """Allocate tracked global memory on the device."""
        arr = np.zeros(shape, dtype=dtype)
        if self._allocated + arr.nbytes > self.spec.global_mem_bytes:
            raise DeviceAllocationError(
                f"allocation of {arr.nbytes} B exceeds remaining global "
                f"memory ({self.spec.global_mem_bytes - self._allocated} B free)"
            )
        self._allocated += arr.nbytes
        name = name or f"gmem{len(self._allocations)}"
        tracked = TrackedArray(arr, MemSpace.GLOBAL, self._sink, name=name)
        self._allocations[name] = tracked
        return tracked

    def to_device(self, host: np.ndarray, name: str = "") -> TrackedArray:
        """Host-to-device copy (DMA over PCI-E; not counted as kernel traffic)."""
        arr = self.alloc(host.shape, dtype=host.dtype, name=name, zero=False)
        arr.data[...] = host
        return arr

    def to_host(self, arr: TrackedArray) -> np.ndarray:
        """Device-to-host copy of a result buffer."""
        return np.array(arr.data, copy=True)

    def free(self, arr: TrackedArray) -> None:
        for name, a in list(self._allocations.items()):
            if a is arr:
                del self._allocations[name]
                self._allocated -= arr.nbytes
                return
        raise DeviceAllocationError(f"{arr!r} is not a live device allocation")

    def readonly(self, arr: TrackedArray) -> ReadOnlyView:
        """Bind a global allocation to the read-only data cache path
        (the ``const __restrict__`` trick from Section IV-A)."""
        return ReadOnlyView(arr, counters=self._sink)

    @property
    def bytes_allocated(self) -> int:
        return self._allocated

    # -- execution -------------------------------------------------------------
    def launch(
        self,
        kernel: KernelFn,
        config: LaunchConfig,
        *,
        name: Optional[str] = None,
        workers: Optional[int] = None,
        blocks: Optional[Sequence[int]] = None,
        backend: Optional[str] = None,
        host_channels: Sequence[HostChannel] = (),
    ) -> LaunchRecord:
        """Run ``kernel`` once per block, merging access counters.

        ``workers`` selects the block-parallel engine: ``None`` consults the
        ``REPRO_SIM_WORKERS`` environment variable (default 1, block-serial),
        ``0`` means one worker per core, ``N > 1`` runs simulated blocks on
        ``N`` threads with privatized counters and output shards merged by a
        deterministic final reduction (:mod:`repro.gpusim.parallel`).

        ``backend`` picks the execution engine explicitly (``None`` consults
        ``REPRO_SIM_BACKEND``): ``"sequential"`` forces the block-serial
        loop regardless of ``workers``, ``"threads"`` / ``"processes"``
        select the pool flavour when more than one worker resolves, and
        ``"auto"`` / ``"megabatch"`` keep the historical behaviour (threads
        when parallel — megabatching happens above the launch seam).
        ``host_channels`` ships kernel host-side state across the process
        boundary (ignored by the in-process engines, which share memory).

        ``blocks`` restricts the launch to a subset of block ids — the
        unit of partial re-execution (a device stripe, a recovered block
        range) the resilience layer relies on.  ``None`` runs the full
        grid, exactly as before.

        If a fault injector is attached, its launch hook runs first and
        may raise (transient allocation failure, dead device, shared
        memory overflow); block/merge hooks fire inside the parallel
        engine.
        """
        config.validate(self.spec)
        self._check_lifecycle()
        attempt = self._launch_attempts
        self._launch_attempts += 1
        block_ids = list(range(config.grid_dim)) if blocks is None else list(blocks)
        engine = resolve_backend(backend)
        if engine == "sequential":
            resolved = 1
        else:
            resolved = resolve_workers(workers, max(1, len(block_ids)))
        if resolved <= 1:
            run_backend = "sequential"
        elif engine == "processes":
            run_backend = "processes"
        else:
            run_backend = "threads"
        kernel_name = name or getattr(kernel, "__name__", "kernel")
        tr = self.tracer
        if tr.enabled:
            launch_ctx = tr.span(
                "launch", cat="engine", cost_us=LAUNCH_OVERHEAD_US,
                device=self.ordinal,
                args={
                    "kernel": kernel_name, "grid_dim": config.grid_dim,
                    "blocks": len(block_ids), "workers": resolved,
                    "attempt": attempt, "backend": run_backend,
                },
            )
        else:
            launch_ctx = tr.span("launch")
        with launch_ctx as launch_span:
            # the fault hook runs inside the span so an injected launch
            # failure shows up as an (empty) launch with its fault event
            if self.faults is not None:
                self.faults.on_launch(self.ordinal, attempt)
            t0 = time.perf_counter()
            pre_faults = (
                self.faults.injected_count if self.faults is not None else 0
            )
            if run_backend == "sequential":
                merged, sync_counts, max_shared = self._run_serial(
                    kernel, config, block_ids
                )
            elif run_backend == "processes":
                merged, sync_counts, max_shared = self._run_processes(
                    kernel, config, resolved, block_ids, launch_span,
                    host_channels,
                )
            else:
                merged, sync_counts, max_shared = self._run_parallel(
                    kernel, config, resolved, block_ids, launch_span
                )
        if self.faults is not None:
            merged.faults_injected += self.faults.injected_count - pre_faults
        self.counters.merge(merged)
        record = LaunchRecord(
            kernel_name=kernel_name,
            config=config,
            counters=merged,
            blocks_run=len(block_ids),
            wall_seconds=time.perf_counter() - t0,
            sync_counts=sync_counts,
            workers=resolved,
            backend=run_backend,
        )
        record._max_shared = max_shared
        self.launches.append(record)
        return record

    def _run_serial(
        self, kernel: KernelFn, config: LaunchConfig, block_ids: List[int]
    ) -> Tuple[AccessCounters, List[int], int]:
        merged = AccessCounters()
        sync_counts: List[int] = []
        max_shared = 0
        tr = self.tracer
        self._set_active(merged)  # device-global traffic lands on this launch
        try:
            for b in block_ids:
                self._check_lifecycle()
                ctx = BlockContext(
                    spec=self.spec, config=config, block_id=b, counters=merged
                )
                if tr.enabled:
                    with tr.span(
                        "block", cat="engine", key=b,
                        cost_us=BLOCK_OVERHEAD_US, args={"block": b},
                    ):
                        kernel(ctx)
                else:
                    kernel(ctx)
                sync_counts.append(ctx.sync_count)
                max_shared = max(max_shared, ctx.shared_bytes_used)
                if self.progress is not None:
                    self.progress(self.ordinal, b)
        finally:
            self._set_active(None)
        return merged, sync_counts, max_shared

    def _run_parallel(
        self,
        kernel: KernelFn,
        config: LaunchConfig,
        num_workers: int,
        block_ids: List[int],
        launch_span: Optional[Any] = None,
    ) -> Tuple[AccessCounters, List[int], int]:
        """Block-parallel execution: each worker owns privatized counters
        and output shards; a final reduction restores the sequential
        semantics (see :mod:`repro.gpusim.parallel`)."""
        sync_counts = {b: 0 for b in block_ids}
        shared_used = {b: 0 for b in block_ids}

        def run_block(b: int, ledger: AccessCounters) -> None:
            ctx = BlockContext(
                spec=self.spec, config=config, block_id=b, counters=ledger
            )
            kernel(ctx)
            sync_counts[b] = ctx.sync_count
            shared_used[b] = ctx.shared_bytes_used

        merged = run_blocks_parallel(
            num_workers,
            config.grid_dim,
            run_block,
            list(self._allocations.values()),
            self._set_active,
            block_ids=block_ids,
            injector=self.faults,
            device_ordinal=self.ordinal,
            crash_recovery=self.crash_recovery,
            tracer=self.tracer,
            launch_span=launch_span,
            deadline=self.deadline,
            cancel=self.cancel,
            progress=self.progress,
        )
        ordered = [sync_counts[b] for b in block_ids]
        return merged, ordered, max(shared_used.values(), default=0)

    def _run_processes(
        self,
        kernel: KernelFn,
        config: LaunchConfig,
        num_workers: int,
        block_ids: List[int],
        launch_span: Optional[Any] = None,
        host_channels: Sequence[HostChannel] = (),
    ) -> Tuple[AccessCounters, List[int], int]:
        """Block-parallel execution on forked worker processes: the same
        deal and reduction as :meth:`_run_parallel`, but each worker runs
        on its own interpreter over shared-memory arrays
        (:mod:`repro.gpusim.procpool`).  The per-block sync/shared-usage
        bookkeeping lives in host dicts, so it rides its own channel."""
        sync_counts = {b: 0 for b in block_ids}
        shared_used = {b: 0 for b in block_ids}

        def run_block(b: int, ledger: AccessCounters) -> None:
            ctx = BlockContext(
                spec=self.spec, config=config, block_id=b, counters=ledger
            )
            kernel(ctx)
            sync_counts[b] = ctx.sync_count
            shared_used[b] = ctx.shared_bytes_used

        def collect_block_stats(deal: Sequence[int]):
            return [
                (int(sync_counts[b]), int(shared_used[b])) for b in deal
            ]

        def install_block_stats(w: int, deal: Sequence[int], payload) -> None:
            for b, (sync, shared) in zip(deal, payload):
                sync_counts[b] = sync
                shared_used[b] = shared

        channels = (
            HostChannel(collect=collect_block_stats, install=install_block_stats),
        ) + tuple(host_channels)
        merged = run_blocks_process_parallel(
            num_workers,
            config.grid_dim,
            run_block,
            list(self._allocations.values()),
            self._set_active,
            block_ids=block_ids,
            injector=self.faults,
            device_ordinal=self.ordinal,
            crash_recovery=self.crash_recovery,
            tracer=self.tracer,
            launch_span=launch_span,
            host_channels=channels,
            deadline=self.deadline,
            cancel=self.cancel,
            watchdog=self.watchdog,
            on_watchdog=self.on_watchdog,
            progress=self.progress,
        )
        ordered = [sync_counts[b] for b in block_ids]
        return merged, ordered, max(shared_used.values(), default=0)

    def reset_counters(self) -> None:
        self.counters = AccessCounters()
        self.launches.clear()
