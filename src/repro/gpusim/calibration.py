"""Calibrated constants for the timing model, each pinned to one observation.

Policy (DESIGN.md Section 5): hardware numbers (latencies, bandwidths, SM
counts) come from the paper and the whitepapers it cites and live in
:mod:`repro.gpusim.spec`.  Everything else — "effective issue cost" style
constants that fold latency hiding, L2 behaviour and pipeline overlap into a
single per-access figure — is calibrated, and every calibrated constant below
names the single paper observation that pins its value.  The reproduction
claims *shapes* (orderings, speedup factors, knee positions), so constants
are chosen to land the paper's reported ratios, not absolute seconds.

Units: cycles consumed on the named pipeline, per thread-lane, per element
access (or per atomic update).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Calibration:
    """Effective per-access pipeline costs and model shape parameters."""

    #: Shared-memory pipeline cost per element access.  Pin: with 3 element
    #: accesses per pair, Register-SHM stays compute-bound at ~35% shared
    #: bandwidth utilization (Table II).
    shm_issue: float = 3.0

    #: Read-only-cache pipeline cost per element access.  Pin: Register-ROC
    #: averages 4.7x over Naive vs 5.5x for Register-SHM (Fig. 2) while
    #: showing 65% ROC utilization (Table II).
    roc_issue: float = 10.2

    #: Effective global-memory pipeline cost per element access for the
    #: Naive kernel's uncoalesced-reuse pattern (includes the L2 hits the
    #: paper ignores in Eq. 2).  Pin: Naive is 5.5x slower than Register-SHM
    #: for 2-PCF (Fig. 2) at 15% arithmetic / 76% L2 utilization (Table II).
    global_issue: float = 53.0

    #: Coalesced streaming global reads (tile loads): near-bandwidth cost.
    #: Pin: tile-load traffic is N + sum(M-i)B reads (Eq. 3) and is
    #: negligible against O(N^2) pair work, matching the paper's claim that
    #: all three cached kernels share the same (small) global read count.
    global_stream_issue: float = 12.0

    #: Global-memory atomic update, before contention scaling.  Pin: the
    #: three kernels writing SDH output straight to global memory via
    #: atomics run ~11x slower than Reg-ROC-Out (Section IV-D / Fig. 4).
    global_atomic: float = 390.0

    #: Shared-memory atomic update (read-modify-write + lock), before
    #: conflict scaling.  Pin: Reg-SHM-Out is shared-memory bound at ~95%
    #: shared utilization (Table IV) while Reg-ROC-Out, which moves tile
    #: reads to the ROC, becomes compute bound and wins by ~10% (Fig. 4,
    #: Table III: 2.86 vs 2.59 TB/s achieved).  At the paper's ~2500-bucket
    #: SDH the warp conflict degree of uniform-box distance data is ~1.4,
    #: making the effective cost 17 x 1.4 ~ 24 cycles per update.
    shared_atomic: float = 17.0

    #: Warp-shuffle broadcast per element.  Pin: shuffle tiling performs
    #: "almost the same" as shared-memory and ROC tiling (Fig. 9).
    shuffle_issue: float = 3.2

    #: Secondary-pipeline interference: fraction of non-dominant pipeline
    #: cycles added to the dominant pipeline's total.  Pin: Register-SHM
    #: beats SHM-SHM by the small consistent margin in Fig. 2 (5.5x vs 5.3x
    #: average speedup) even though both are compute bound.
    interference_kappa: float = 0.15

    #: Occupancy slowdown exponent: time scales by (1/occupancy)^gamma.
    #: Pin: Fig. 5 — occupancy stepping from ~90% to 50% raises Reg-ROC-Out
    #: runtime by ~1.6x as the histogram grows to 5000 buckets.
    occupancy_gamma: float = 0.8

    #: Atomic conflict sensitivity: the effective shared-atomic cost is
    #: multiplied by the mean warp conflict degree raised to this power.
    #: Pin: Fig. 5 — runtime degrades at very small bucket counts ("high
    #: contention ... many threads compete for an output element").
    conflict_exponent: float = 1.0

    #: Fixed per-launch overhead (driver + kernel setup), seconds.  Pin:
    #: sub-millisecond runtimes at N=512 in Fig. 2's log-scale plot.
    launch_overhead_s: float = 8e-6

    #: Divergent-loop issue overhead: extra fraction of pair cost paid per
    #: warp iteration whose lanes have non-uniform trip counts.  Pin: the
    #: 12-13% intra-block gain in Fig. 7 is fully explained by the
    #: (1 + warp_size/B) serialization factor at the paper's B=256 SDH
    #: configuration, so no extra overhead is needed.
    divergent_loop_overhead: float = 0.0


#: Per-pair compute-pipeline costs for an application's distance function,
#: split the way the profiler tables report them.  ``arith`` is the
#: floating-point issue share (Tables II/IV "Arithmetic Operation"),
#: ``ctrl`` the control-flow share, ``other`` address math / conversions /
#: special-function units.
@dataclass(frozen=True)
class ComputeCost:
    arith: float
    ctrl: float
    other: float

    @property
    def total(self) -> float:
        return self.arith + self.ctrl + self.other


#: 2-PCF (Euclidean distance + radius test, register accumulate).
#: Pin: Table II — Register-SHM at 52% arithmetic, 11% control flow.
PCF_COMPUTE = ComputeCost(arith=15.0, ctrl=3.2, other=9.8)

#: SDH (Euclidean distance + sqrt + bucket index).  Pin: Table IV —
#: Reg-SHM-Out at 25% arithmetic, 5% control flow.
SDH_COMPUTE = ComputeCost(arith=9.5, ctrl=1.9, other=18.6)

#: Generic defaults for other 2-BS members, scaled from the SDH/PCF pair.
KNN_COMPUTE = ComputeCost(arith=14.0, ctrl=6.0, other=14.0)
KDE_COMPUTE = ComputeCost(arith=20.0, ctrl=3.0, other=12.0)
JOIN_COMPUTE = ComputeCost(arith=6.0, ctrl=5.0, other=9.0)
GRAM_COMPUTE = ComputeCost(arith=18.0, ctrl=2.5, other=9.5)
PSS_COMPUTE = ComputeCost(arith=24.0, ctrl=6.0, other=16.0)

DEFAULT_CALIBRATION = Calibration()


@dataclass(frozen=True)
class CpuCalibration:
    """CPU-baseline cost model (Section IV-D's OpenMP program).

    Pin: the best GPU kernel (Reg-ROC-Out) is ~50x the 8-core Xeon E5-2640
    v2 program, and the *least* optimized GPU kernel still beats it 3.5x
    (Fig. 4).  With 16 hyper-threads at an SMT yield of 0.3 the machine
    delivers ~10.4 core-equivalents at 2 GHz; ~13 cycles/pair then matches
    a well-vectorized AVX histogram loop.  Scheduler and affinity effects
    are *not* constants here — they emerge from the simulated chunk
    assignments (:mod:`repro.cpusim.schedule`) and thread placements
    (:mod:`repro.cpusim.affinity`).
    """

    cycles_per_pair_sdh: float = 13.0
    cycles_per_pair_pcf: float = 10.4
    #: cost of grabbing one chunk from the scheduler queue (dynamic/guided
    #: transaction; also models static's per-chunk loop setup).
    chunk_overhead_cycles: float = 2000.0
    #: per-thread cost of the private-output reduction, cycles per element.
    reduction_cycles_per_elem: float = 4.0


DEFAULT_CPU_CALIBRATION = CpuCalibration()
