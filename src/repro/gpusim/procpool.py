"""Process-parallel launch engine: forked workers over shared-memory arrays.

The thread engine in :mod:`repro.gpusim.parallel` removes all *algorithmic*
serialization — privatized shards merge by a commutative reduction — but
every worker still contends for one CPython interpreter lock.  This module
runs the same dealt-block protocol in **forked worker processes** so the
numpy work executes on independent interpreters:

* Device allocations are rehomed into POSIX shared memory for the launch
  (:class:`SharedArena`): the children inherit the mappings over ``fork``
  and read inputs with zero copies or pickling.
* Each child executes exactly the thread backend's strided deal
  (``blocks[w::num_workers]``), charging a private
  :class:`~repro.gpusim.counters.AccessCounters` ledger and producing the
  same privatized :class:`~repro.gpusim.parallel._Shard` state — which it
  exports back through one shared-memory segment per worker plus a small
  pickled manifest over a pipe.
* The parent installs every worker's results **in worker-index order**
  (ledgers, shards, fault events, trace spans), so the reduction, the
  merged counters and the exported trace are bit-identical to the thread
  backend for the same configuration.

Crash semantics match the thread pool: a :class:`WorkerCrashError` raised
inside a child (fault injection) — or the child process dying outright —
discards that worker's shards and ledger, and the crashed deals are
re-executed in the parent through the shared
:func:`~repro.gpusim.parallel._recover_crashes` path.

Host-side state that lives outside device allocations (per-block sync
counts, emitted-pair host buffers) does not travel over ``fork`` writes;
kernels ship it explicitly through :class:`HostChannel` collect/install
hooks.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import multiprocessing.connection
import os
import pickle
import signal
import threading
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.tracer import (
    BLOCK_OVERHEAD_US,
    MERGE_OVERHEAD_US,
    NULL_TRACER,
    PHASE_MERGE,
    PHASE_WORKERS,
    WORKER_OVERHEAD_US,
    Span,
)
from .counters import AccessCounters
from .errors import WorkerCrashError
from .parallel import ParallelSession, _recover_crashes, _Shard

#: _Shard fields a child exports; each is either ``None`` or an ndarray.
_SHARD_FIELDS = ("copy", "written", "delta", "maxed")


# Resource-tracker note: on this interpreter line creating a segment
# registers it and ``unlink()`` unregisters it, while attaching by name
# does neither.  Every segment below is created in one process (parent
# arena, child shard export) and unlinked exactly once in the parent, and
# parent and children share one tracker over the fork, so the ledger
# balances with no manual (un)registration — and a segment orphaned by a
# crash is still reclaimed by the tracker at interpreter exit.
#
# The tracker cannot help when the *whole process tree* dies abruptly
# (SIGKILL mid-launch): nothing runs, and /dev/shm keeps the files.  Two
# extra layers close that hole.  Segments carry a parseable name
# ``repro-pp-<owner pid>-<creator pid>-<counter>`` and are tracked in a
# module-level registry with a one-time ``atexit`` unlink hook (covers
# abnormal-but-orderly exits: unhandled exceptions, sys.exit).  For the
# SIGKILL case,
# :func:`cleanup_stale_segments` scans /dev/shm for our prefix, checks
# whether the embedded creator pid is still alive, and unlinks orphans —
# it runs automatically at the start of every process-pool launch.

#: Prefix for every shared-memory segment this module creates.
_SEG_PREFIX = "repro-pp"

_LIVE_SEGMENTS: set = set()
_SEG_LOCK = threading.Lock()
_SEG_COUNTER = itertools.count()
_ATEXIT_INSTALLED = False


def _create_segment(
    size: int, owner: Optional[int] = None
) -> shared_memory.SharedMemory:
    """Create a named, registered shared-memory segment.

    The name embeds the *owner* pid — the process responsible for
    eventually unlinking it — so :func:`cleanup_stale_segments` can later
    tell live segments from orphans.  That is the creator by default, but
    a forked worker exporting shards passes its parent's pid: the child
    is dead long before the parent attaches and unlinks, and the segment
    must not look stale in between.  The first call installs an
    ``atexit`` hook that unlinks whatever this process still holds.
    """
    global _ATEXIT_INSTALLED
    with _SEG_LOCK:
        if not _ATEXIT_INSTALLED:
            atexit.register(_cleanup_live_segments)
            _ATEXIT_INSTALLED = True
    owner_pid = os.getpid() if owner is None else int(owner)
    while True:
        name = f"{_SEG_PREFIX}-{owner_pid}-{os.getpid()}-{next(_SEG_COUNTER)}"
        try:
            seg = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, size)
            )
            break
        except FileExistsError:  # pragma: no cover - stale name from a
            continue  # recycled pid; keep counting until a free slot
    with _SEG_LOCK:
        _LIVE_SEGMENTS.add(seg.name)
    return seg


def _forget_segment(name: str) -> None:
    """Drop ``name`` from the live registry (it has been unlinked)."""
    with _SEG_LOCK:
        _LIVE_SEGMENTS.discard(name)


def _unlink_by_name(name: str) -> bool:
    """Attach-and-unlink a segment by name; True if it existed."""
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - lost a race
        return False
    return True


def _cleanup_live_segments() -> None:
    """atexit hook: unlink every segment this process created and never
    released (an exception unwound past the launch's cleanup)."""
    with _SEG_LOCK:
        names = sorted(_LIVE_SEGMENTS)
        _LIVE_SEGMENTS.clear()
    for name in names:
        try:
            _unlink_by_name(name)
        except OSError:  # pragma: no cover - nothing left to do at exit
            pass


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


def cleanup_stale_segments() -> List[str]:
    """Unlink shared-memory segments orphaned by dead processes.

    Scans ``/dev/shm`` for files matching ``repro-pp-<owner>-...`` whose
    owner pid no longer exists and unlinks them.  Segments owned by the
    current process or any live process are never touched, so concurrent
    launches are safe.  Returns the names removed.  Called automatically
    by :func:`run_blocks_process_parallel`; also a public hand-tool for
    supervisors sweeping up after SIGKILLed runs.
    """
    removed: List[str] = []
    try:
        entries = os.listdir("/dev/shm")
    except OSError:  # pragma: no cover - non-Linux shm layout
        return removed
    prefix = _SEG_PREFIX + "-"
    for fname in sorted(entries):
        if not fname.startswith(prefix):
            continue
        pid_part = fname[len(prefix):].split("-", 1)[0]
        if not pid_part.isdigit():
            continue
        pid = int(pid_part)
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            if _unlink_by_name(fname):
                removed.append(fname)
        except OSError:  # pragma: no cover - race with another sweeper
            continue
        _forget_segment(fname)
    return removed


@dataclass(frozen=True)
class HostChannel:
    """Transport for host-side state a kernel body mutates outside device
    allocations (plain Python dicts in the launch closure).

    Under the thread backend such state is shared memory for free; under
    the process backend each child's writes stay in its own address space.
    ``collect(deal)`` runs in the child after its blocks finish and returns
    a picklable payload; ``install(worker, deal, payload)`` runs in the
    parent, in worker-index order, to replay the writes.  Crashed workers'
    payloads are discarded — recovery re-executes their blocks in the
    parent, regenerating the host state directly.
    """

    collect: Callable[[Sequence[int]], Any]
    install: Callable[[int, Sequence[int], Any], None]


class SharedArena:
    """Rehome every tracked allocation's backing buffer into POSIX shared
    memory for the duration of one launch.

    ``TrackedArray._data`` is repointed at a shared-memory-backed ndarray
    holding the same values; children inherit the mapping over ``fork``.
    :meth:`restore` copies the (merged) values back into the original
    buffers and repoints the arrays, so references taken before the launch
    (e.g. result views held by callers) observe the final state.
    """

    def __init__(self, arrays: Sequence) -> None:
        self._entries: List[Tuple[Any, np.ndarray, shared_memory.SharedMemory]]
        self._entries = []
        for arr in arrays:
            orig = arr._data
            shm = _create_segment(orig.nbytes)
            view = np.ndarray(orig.shape, dtype=orig.dtype, buffer=shm.buf)
            view[...] = orig
            arr._data = view
            self._entries.append((arr, orig, shm))

    def restore(self) -> None:
        for arr, orig, _ in self._entries:
            orig[...] = arr._data
            arr._data = orig
        for _, _, shm in self._entries:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            _forget_segment(shm.name)
        self._entries = []


def _pack_shards(session: ParallelSession, w: int):
    """Export worker ``w``'s shard arrays into one shared-memory segment.

    Returns ``(segment name or None, manifest)`` where the manifest lists
    ``(array index, field, dtype, shape, byte offset)`` rows — everything
    the parent needs to reconstruct the :class:`_Shard` objects without
    pickling bulk data through the pipe.
    """
    parts = []
    for ai, arr in enumerate(session._shadowed):
        shard = arr._shadow._shards.get(w)
        if shard is None:
            continue
        for name in _SHARD_FIELDS:
            val = getattr(shard, name)
            if val is not None:
                parts.append((ai, name, np.ascontiguousarray(val)))
    if not parts:
        return None, []
    total = sum(int(val.nbytes) for _, _, val in parts)
    # the parent unlinks this segment after installing; name it with the
    # parent's pid so it never looks stale once this child exits
    shm = _create_segment(total, owner=os.getppid())
    manifest = []
    offset = 0
    for ai, name, val in parts:
        np.ndarray(val.shape, dtype=val.dtype, buffer=shm.buf, offset=offset)[
            ...
        ] = val
        manifest.append((ai, name, val.dtype.str, val.shape, offset))
        offset += int(val.nbytes)
    seg_name = shm.name
    shm.close()
    return seg_name, manifest


def _install_shards(
    session: ParallelSession, w: int, seg_name: Optional[str], manifest
) -> None:
    """Reconstruct worker ``w``'s shards in the parent from its segment."""
    if seg_name is None:
        return
    shm = shared_memory.SharedMemory(name=seg_name)
    try:
        shards: Dict[int, _Shard] = {}
        for ai, field_name, dtype, shape, offset in manifest:
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
            )
            shard = shards.get(ai)
            if shard is None:
                shard = shards[ai] = _Shard()
            setattr(shard, field_name, np.array(view, copy=True))
        for ai, shard in shards.items():
            session._shadowed[ai]._shadow._shards[w] = shard
    finally:
        shm.close()
        shm.unlink()
        _forget_segment(seg_name)


def _picklable_error(exc: BaseException) -> BaseException:
    """Make sure a child-side failure can cross the pipe."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _child_main(
    w: int,
    conn,
    blocks: List[int],
    num_workers: int,
    run_block: Callable[[int, AccessCounters], None],
    session: ParallelSession,
    ledger: AccessCounters,
    set_active: Callable[[Optional[AccessCounters]], None],
    injector,
    device_ordinal: int,
    tracer,
    channels: Sequence[HostChannel],
    fault_snapshot,
    deadline=None,
) -> None:
    """Worker-process body: run the deal, report, exit without cleanup.

    Mirrors the thread backend's ``worker_fn`` exactly — same strided deal,
    same span shapes, same crash capture — then serializes the results.
    ``os._exit`` skips interpreter teardown so inherited parent state
    (pipes, shm mappings, atexit hooks) is never double-finalized.
    """
    status = 0
    report: Dict[str, Any] = {
        "worker": int(w), "ledger": ledger, "crash": None, "error": None,
        "spans": None, "faults": None, "channels": None,
        "shm": None, "shards": [],
    }
    trace_on = tracer.enabled
    try:
        # record on the inherited copy of the parent's tracer — the kernel
        # body's hook sites hold closure references to this exact object,
        # so engine spans opened inside ``run_block`` (tile batches, prune
        # decisions, mega stages) nest under the block spans via the
        # tracer's thread-local stack and ship with the worker subtree.
        # The copy's lock and thread-locals never cross the pipe: only the
        # plain :class:`Span` tree does, adopted in worker-index order.
        if injector is not None:
            # fault instants must nest inside the shipped subtree
            injector.tracer = tracer
        session.enter_worker(w)
        set_active(ledger)
        deal = blocks[w::num_workers]
        worker_span: Optional[Span] = None
        if trace_on:
            worker_ctx = tracer.span(
                "worker", cat="engine", phase=PHASE_WORKERS, key=w, lane=w,
                cost_us=WORKER_OVERHEAD_US,
                args={"worker": int(w), "blocks": [int(b) for b in deal]},
            )
        else:
            worker_ctx = tracer.span("worker")
        try:
            with worker_ctx as worker_span:
                try:
                    for b in deal:
                        if deadline is not None:
                            # time.monotonic is system-wide, so the
                            # fork-inherited deadline stays meaningful;
                            # the exception ships back as the report's
                            # "error" and re-raises in the parent
                            deadline.check()
                        if trace_on:
                            block_ctx = tracer.span(
                                "block", cat="engine", key=b,
                                cost_us=BLOCK_OVERHEAD_US,
                                args={"block": int(b)},
                            )
                        else:
                            block_ctx = tracer.span("block")
                        with block_ctx:
                            if injector is not None:
                                injector.on_block(device_ordinal, b)
                            run_block(b, ledger)
                except WorkerCrashError as crash:
                    report["crash"] = {
                        "message": str(crash),
                        "device": crash.device,
                        "block": crash.block,
                    }
                finally:
                    set_active(None)
        finally:
            if trace_on:
                report["spans"] = worker_span
        if report["crash"] is None:
            report["shm"], report["shards"] = _pack_shards(session, w)
            report["channels"] = [ch.collect(deal) for ch in channels]
    except BaseException as exc:  # noqa: BLE001 - ships to the parent
        report["error"] = _picklable_error(exc)
    try:
        if injector is not None:
            report["faults"] = injector.delta_since(fault_snapshot)
        conn.send(report)
        conn.close()
    except BaseException:  # pragma: no cover - parent sees EOF instead
        status = 1
    os._exit(status)


def run_blocks_process_parallel(
    num_workers: int,
    grid_dim: int,
    run_block: Callable[[int, AccessCounters], None],
    arrays: Sequence,
    set_active: Callable[[Optional[AccessCounters]], None],
    *,
    block_ids: Optional[Sequence[int]] = None,
    injector=None,
    device_ordinal: int = 0,
    crash_recovery=None,
    tracer=None,
    launch_span=None,
    host_channels: Sequence[HostChannel] = (),
    deadline=None,
    cancel=None,
    watchdog: Optional[float] = None,
    on_watchdog: Optional[Callable[[Dict[str, Any]], None]] = None,
    progress=None,
) -> AccessCounters:
    """Process-pool twin of :func:`~repro.gpusim.parallel.
    run_blocks_parallel`: same deal, same reduction, forked executors.

    The call contract is identical (plus ``host_channels``); the returned
    merged ledger, the shard reduction and the recorded trace are
    bit-identical to the thread backend for a fixed configuration.  Uses
    raw ``fork`` + one pipe per worker: results are installed strictly in
    worker-index order regardless of completion order, and a child that
    dies without reporting is synthesized into a :class:`WorkerCrashError`
    feeding the normal crash-recovery path.

    Lifecycle controls (all duck-typed, optional):

    * ``deadline`` / ``cancel`` — objects with ``check()`` polled in the
      parent's wait loop; on a trip every outstanding child is SIGKILLed
      and reaped before the control's exception propagates.  ``deadline``
      also crosses the fork (``time.monotonic`` is system-wide) and is
      checked per block inside each child; ``cancel`` does not — a
      ``threading.Event`` set after the fork is invisible to children,
      which is why the parent kills rather than asks.
    * ``watchdog`` — wall-clock seconds without *any* worker reporting
      before the parent declares the stragglers hung, SIGKILLs them, and
      lets the synthesized died-before-reporting crash path re-deal their
      blocks.  ``on_watchdog`` (if given) observes each kill with
      ``{"workers": [...], "timeout": seconds}``.
    * ``progress`` — the per-block completion hook
      ``progress(device_ordinal, block_id)``.  Children cannot call back
      into the parent, so the hook fires parent-side when a worker's
      completed deal is installed (per block, deal granularity), and per
      block for parent-thread recovery re-executions.
    """
    if multiprocessing.get_start_method(allow_none=False) != "fork" or not hasattr(
        os, "fork"
    ):  # pragma: no cover - non-POSIX fallback guard
        raise RuntimeError(
            "backend 'processes' requires fork-capable multiprocessing"
        )
    blocks = list(range(grid_dim)) if block_ids is None else list(block_ids)
    tracer = tracer if tracer is not None else NULL_TRACER
    cleanup_stale_segments()
    arena = SharedArena(arrays)
    session = ParallelSession(num_workers)
    ledgers = [AccessCounters() for _ in range(num_workers)]
    crashes: List[Optional[WorkerCrashError]] = [None] * num_workers
    channels = tuple(host_channels)
    try:
        session.attach(arrays)
        fault_snapshot = injector.snapshot() if injector is not None else None
        pids: List[int] = []
        conns = []
        for w in range(num_workers):
            recv_conn, send_conn = multiprocessing.Pipe(duplex=False)
            pid = os.fork()
            if pid == 0:
                recv_conn.close()
                _child_main(
                    w, send_conn, blocks, num_workers, run_block, session,
                    ledgers[w], set_active, injector, device_ordinal,
                    tracer, channels, fault_snapshot, deadline,
                )
                os._exit(1)  # pragma: no cover - _child_main never returns
            send_conn.close()
            pids.append(pid)
            conns.append(recv_conn)
        # Wait loop: collect reports in *completion* order (installed in
        # worker-index order below), slicing the blocking wait so the
        # parent can poll lifecycle controls and run the watchdog clock.
        # A child that dies without reporting surfaces as EOF -> None.
        reports: List[Optional[Dict[str, Any]]] = [None] * num_workers
        conn_worker = {conns[w]: w for w in range(num_workers)}
        pending = set(range(num_workers))
        tripped = None
        last_progress = time.monotonic()
        while pending:
            waits = []
            if watchdog is not None:
                waits.append(
                    max(0.0, watchdog - (time.monotonic() - last_progress))
                )
            if deadline is not None or cancel is not None:
                waits.append(0.05)
            ready = multiprocessing.connection.wait(
                [conns[w] for w in sorted(pending)],
                timeout=min(waits) if waits else None,
            )
            for conn in ready:
                w = conn_worker[conn]
                try:
                    reports[w] = conn.recv()
                except (EOFError, OSError):
                    reports[w] = None
                finally:
                    conn.close()
                pending.discard(w)
                last_progress = time.monotonic()
            if cancel is not None and getattr(cancel, "cancelled", False):
                tripped = cancel
            elif deadline is not None and getattr(deadline, "expired", False):
                tripped = deadline
            if tripped is not None:
                break
            if (
                not ready
                and watchdog is not None
                and pending
                and time.monotonic() - last_progress >= watchdog
            ):
                if any(conns[w].poll(0) for w in pending):
                    continue  # a report landed during the timeout race
                hung = sorted(pending)
                for w in hung:
                    try:
                        os.kill(pids[w], signal.SIGKILL)
                    except ProcessLookupError:  # pragma: no cover
                        pass  # exited between poll and kill
                if tracer.enabled:
                    tracer.instant(
                        "lifecycle:watchdog-kill", cat="lifecycle",
                        args={
                            "workers": [int(w) for w in hung],
                            "timeout": float(watchdog),
                        },
                    )
                if on_watchdog is not None:
                    on_watchdog({"workers": hung, "timeout": watchdog})
                break  # hung workers become died-before-reporting crashes
        # lifecycle trip: nothing outstanding may outlive the launch —
        # kill the stragglers, then reap everyone before raising
        if tripped is not None:
            for w in sorted(pending):
                try:
                    os.kill(pids[w], signal.SIGKILL)
                except ProcessLookupError:  # pragma: no cover
                    pass
        for w in sorted(pending):
            conns[w].close()
        for w in range(num_workers):
            os.waitpid(pids[w], 0)
        if tripped is not None:
            tripped.check()
            raise RuntimeError(  # pragma: no cover - check() must raise
                "lifecycle control tripped but check() did not raise"
            )
        # install in worker-index order: fault state first (recovery may
        # consult remaining budgets), then ledgers, spans, shards, host
        # channels — completion order never leaks into the results
        first_error: Optional[BaseException] = None
        for w, report in enumerate(reports):
            if report is None:
                crash = WorkerCrashError(
                    f"worker process {w} died before reporting",
                    device=device_ordinal,
                )
                crash.worker = w
                crashes[w] = crash
                continue
            if injector is not None and report["faults"] is not None:
                injector.apply_delta(report["faults"])
            ledgers[w] = report["ledger"]
            if tracer.enabled and report["spans"] is not None:
                tracer.adopt(report["spans"], parent=launch_span)
            if report["error"] is not None:
                if first_error is None:
                    first_error = report["error"]
                continue
            if report["crash"] is not None:
                info = report["crash"]
                crash = WorkerCrashError(
                    info["message"], device=info["device"], block=info["block"]
                )
                crash.worker = w
                crashes[w] = crash
                continue
            _install_shards(session, w, report["shm"], report["shards"])
            for ch, payload in zip(channels, report["channels"]):
                ch.install(w, blocks[w::num_workers], payload)
            if progress is not None:
                for b in blocks[w::num_workers]:
                    progress(device_ordinal, b)
        if first_error is not None:
            # matches the thread pool: the first worker's exception (in
            # worker order) propagates after every worker has joined
            raise first_error
        crashed = [w for w in range(num_workers) if crashes[w] is not None]
        recovered = 0
        if crashed:
            recovered = _recover_crashes(
                session, blocks, num_workers, crashed, crashes, ledgers,
                run_block, set_active, injector, device_ordinal,
                crash_recovery, tracer, progress=progress,
            )
        if tracer.enabled:
            merge_ctx = tracer.span(
                "merge", cat="engine", phase=PHASE_MERGE,
                cost_us=MERGE_OVERHEAD_US,
                args={"arrays": len(arrays), "workers": num_workers},
            )
        else:
            merge_ctx = tracer.span("merge")
        with merge_ctx:
            session.merge(injector=injector, device_ordinal=device_ordinal)
    finally:
        session.detach()
        arena.restore()
    merged = AccessCounters()
    for ledger in ledgers:
        merged.merge(ledger)
    merged.recoveries += recovered
    return merged
