"""Memory-space taxonomy and access counters.

The paper's entire analysis (Sections IV-B and IV-D, Eqs. 2-7, Tables II-IV)
is phrased in terms of *how many accesses each algorithm makes to each kind
of GPU memory*.  :class:`AccessCounters` is the ledger every functional
kernel writes into and every analytical model produces, so the two paths can
be compared element-for-element in tests.

Counts are in *element accesses* (one 4-byte scalar read or written by one
thread).  Byte totals are derived with :meth:`AccessCounters.bytes_for`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping


class MemSpace(enum.Enum):
    """The memory spaces distinguished by the paper.

    ``L2`` is the non-programmable cache the paper "ignores" for algorithm
    design but reports in its profiler tables; the simulator routes
    uncached global traffic through it.
    """

    GLOBAL = "global"
    SHARED = "shared"
    ROC = "roc"  # read-only data cache ("texture" path)
    L2 = "l2"
    REGISTER = "register"
    CONSTANT = "constant"


#: Size in bytes of one counted element access (fp32 / int32 everywhere).
ELEMENT_BYTES = 4


@dataclass
class AccessCounters:
    """Per-memory-space tallies of reads, writes and atomic updates.

    Atomic updates are counted separately because their cost model differs
    (read-modify-write plus serialization under conflicts); an atomic is
    *not* additionally counted as a read or a write.
    """

    reads: Dict[MemSpace, int] = field(default_factory=dict)
    writes: Dict[MemSpace, int] = field(default_factory=dict)
    atomics: Dict[MemSpace, int] = field(default_factory=dict)
    #: Sum over warps of the worst-case conflict degree observed for each
    #: atomic issue (1 == conflict-free).  ``atomic_conflict_issues`` is the
    #: number of warp-level atomic issues contributing, so the mean degree
    #: is ``atomic_conflict_degree / atomic_conflict_issues``.
    atomic_conflict_degree: float = 0.0
    atomic_conflict_issues: int = 0
    #: Shared-memory bank conflict excess (replays beyond the first cycle).
    bank_conflict_replays: int = 0
    #: Simulated faults that fired while this ledger was active, and the
    #: recovery actions (block re-executions, retries) absorbed against it
    #: — the per-launch observability feed of the resilience layer.
    faults_injected: int = 0
    recoveries: int = 0

    # -- recording ---------------------------------------------------------
    def add_read(self, space: MemSpace, n: int = 1) -> None:
        self.reads[space] = self.reads.get(space, 0) + int(n)

    def add_write(self, space: MemSpace, n: int = 1) -> None:
        self.writes[space] = self.writes.get(space, 0) + int(n)

    def add_atomic(self, space: MemSpace, n: int = 1) -> None:
        self.atomics[space] = self.atomics.get(space, 0) + int(n)

    def add_conflict_sample(self, degree: float, issues: int = 1) -> None:
        """Record that ``issues`` warp-level atomic issues saw an average
        serialization ``degree`` (>= 1)."""
        if degree < 1.0:
            raise ValueError(f"conflict degree must be >= 1, got {degree}")
        self.atomic_conflict_degree += degree * issues
        self.atomic_conflict_issues += int(issues)

    # -- queries -----------------------------------------------------------
    def read_count(self, space: MemSpace) -> int:
        return self.reads.get(space, 0)

    def write_count(self, space: MemSpace) -> int:
        return self.writes.get(space, 0)

    def atomic_count(self, space: MemSpace) -> int:
        return self.atomics.get(space, 0)

    def total(self, space: MemSpace) -> int:
        """All accesses touching ``space`` (atomics count once)."""
        return (
            self.read_count(space)
            + self.write_count(space)
            + self.atomic_count(space)
        )

    def bytes_for(self, space: MemSpace) -> int:
        """Traffic in bytes; an atomic moves 2 elements (read + write)."""
        plain = self.read_count(space) + self.write_count(space)
        return ELEMENT_BYTES * (plain + 2 * self.atomic_count(space))

    def mean_conflict_degree(self) -> float:
        if self.atomic_conflict_issues == 0:
            return 1.0
        return self.atomic_conflict_degree / self.atomic_conflict_issues

    # -- composition -------------------------------------------------------
    def copy(self) -> "AccessCounters":
        """Independent snapshot — used for per-worker privatized ledgers."""
        out = AccessCounters(
            reads=dict(self.reads),
            writes=dict(self.writes),
            atomics=dict(self.atomics),
        )
        out.atomic_conflict_degree = self.atomic_conflict_degree
        out.atomic_conflict_issues = self.atomic_conflict_issues
        out.bank_conflict_replays = self.bank_conflict_replays
        out.faults_injected = self.faults_injected
        out.recoveries = self.recoveries
        return out

    def merge(self, other: "AccessCounters") -> "AccessCounters":
        """Fold ``other`` into ``self`` (in place) and return ``self``."""
        for space, n in other.reads.items():
            self.add_read(space, n)
        for space, n in other.writes.items():
            self.add_write(space, n)
        for space, n in other.atomics.items():
            self.add_atomic(space, n)
        self.atomic_conflict_degree += other.atomic_conflict_degree
        self.atomic_conflict_issues += other.atomic_conflict_issues
        self.bank_conflict_replays += other.bank_conflict_replays
        self.faults_injected += other.faults_injected
        self.recoveries += other.recoveries
        return self

    @classmethod
    def sum(cls, items: Iterable["AccessCounters"]) -> "AccessCounters":
        out = cls()
        for item in items:
            out.merge(item)
        return out

    def as_dict(self) -> Mapping[str, Mapping[str, int]]:
        """Plain-dict snapshot, convenient for assertions and reports."""
        return {
            "reads": {s.value: n for s, n in sorted(self.reads.items(), key=lambda kv: kv[0].value) if n},
            "writes": {s.value: n for s, n in sorted(self.writes.items(), key=lambda kv: kv[0].value) if n},
            "atomics": {s.value: n for s, n in sorted(self.atomics.items(), key=lambda kv: kv[0].value) if n},
        }

    def __eq__(self, other: object) -> bool:  # counts only, not conflict stats
        if not isinstance(other, AccessCounters):
            return NotImplemented
        return self.as_dict() == other.as_dict()
