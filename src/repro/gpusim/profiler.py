"""Profiler-style reporting: the simulator's answer to ``nvprof``.

Produces the quantities the paper reports in Tables II-IV: per-pipeline
utilization (arithmetic / control-flow / memory) and achieved bandwidth per
memory unit, derived from the same counters and timing the benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .counters import AccessCounters, MemSpace
from .spec import DeviceSpec
from .timing import KernelTiming

#: Memory pipes in fixed priority order.  Utilization ties resolve to the
#: earlier entry (shared > roc > global) — an explicit rule, so the
#: summary never depends on how a caller happened to order the
#: utilization dict.  The on-chip-first priority mirrors the paper's
#: tables, which report the closest memory unit when several saturate.
_MEMORY_PIPES = (
    ("shared", MemSpace.SHARED, "Shared Memory"),
    ("roc", MemSpace.ROC, "Data cache"),
    ("global", MemSpace.GLOBAL, "Global"),
)


@dataclass
class SimReport:
    """One kernel's simulated performance summary."""

    kernel: str
    n: int
    seconds: float
    occupancy: float
    dominant: str
    utilization: Dict[str, float]
    achieved_bandwidth: Dict[str, float]  # bytes/sec per memory space
    counters: Optional[AccessCounters] = None
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def memory_summary(self) -> str:
        """'<util%> (<space>)' for the busiest memory unit — the format of
        the paper's 'Memory' column.  Ties break by the fixed
        :data:`_MEMORY_PIPES` priority (shared, then roc, then global)."""
        best_label, best_util = None, 0.0
        for pipe, _space, label in _MEMORY_PIPES:
            u = self.utilization.get(pipe, 0.0)
            if u > best_util:
                best_label, best_util = label, u
        if best_label is None:
            return "idle"
        return f"{best_util:.0%} ({best_label})"


def build_report(
    kernel: str,
    n: int,
    timing: KernelTiming,
    spec: DeviceSpec,
    counters: Optional[AccessCounters] = None,
    extras: Optional[Dict[str, float]] = None,
) -> SimReport:
    """Assemble a :class:`SimReport` from a timing result and counters."""
    bandwidth: Dict[str, float] = {}
    if counters is not None and timing.seconds > 0:
        for space in (MemSpace.SHARED, MemSpace.ROC, MemSpace.GLOBAL, MemSpace.L2):
            traffic = counters.bytes_for(space)
            if traffic:
                bandwidth[space.value] = traffic / timing.seconds
    return SimReport(
        kernel=kernel,
        n=n,
        seconds=timing.seconds,
        occupancy=timing.occupancy,
        dominant=timing.dominant,
        utilization=dict(timing.utilization),
        achieved_bandwidth=bandwidth,
        counters=counters,
        extras=dict(extras or {}),
    )


def format_bandwidth(bytes_per_sec: float) -> str:
    """Human units matching the paper's Table III (GB/s, TB/s)."""
    if bytes_per_sec >= 1e12:
        return f"{bytes_per_sec / 1e12:.2f} TB/s"
    if bytes_per_sec >= 1e9:
        return f"{bytes_per_sec / 1e9:.0f} GB/s"
    if bytes_per_sec >= 1e6:
        return f"{bytes_per_sec / 1e6:.0f} MB/s"
    return f"{bytes_per_sec:.0f} B/s"


def utilization_table(reports: List[SimReport]) -> str:
    """Render Tables II/IV: kernel, arithmetic, control-flow, memory."""
    rows = [("Kernel", "Arithmetic", "Control-flow", "Memory")]
    for r in reports:
        rows.append(
            (
                r.kernel,
                f"{r.utilization.get('arith', 0.0):.0%}",
                f"{r.utilization.get('ctrl', 0.0):.0%}",
                r.memory_summary,
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(4)]
    lines = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rows
    ]
    lines.insert(1, "-" * (sum(widths) + 6))
    return "\n".join(lines)


def bandwidth_table(reports: List[SimReport]) -> str:
    """Render Table III: achieved bandwidth per memory unit per kernel."""
    spaces = ["shared", "l2", "roc", "global"]
    header = ("Kernel", "Shared Memory", "L2 Cache", "Data cache", "Global Load")
    rows = [header]
    for r in reports:
        rows.append(
            (
                r.kernel,
                *(
                    format_bandwidth(r.achieved_bandwidth.get(s, 0.0))
                    if r.achieved_bandwidth.get(s)
                    else "0 B/s"
                    for s in spaces
                ),
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rows
    ]
    lines.insert(1, "-" * (sum(widths) + 8))
    return "\n".join(lines)
