"""Launch configuration and per-block execution context.

Kernels in this reproduction are written in *block-vectorized SPMD* style:
``run_block`` receives a :class:`BlockContext` describing one CUDA block,
and NumPy arrays over the thread axis stand for per-thread scalars.  The
context provides the CUDA-shaped facilities a block sees — thread ids,
shared-memory allocation (budget-checked against the device), barriers and
warp partitioning — all wired to the access-counting machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .counters import AccessCounters, MemSpace
from .errors import LaunchConfigError, SharedMemoryError
from .memory import TrackedArray
from .spec import DeviceSpec


@dataclass(frozen=True)
class LaunchConfig:
    """Grid geometry for one kernel launch (1-D, as in the paper)."""

    grid_dim: int
    block_dim: int
    shared_bytes: int = 0  # dynamic shared memory request
    regs_per_thread: int = 32

    def validate(self, spec: DeviceSpec) -> None:
        if self.grid_dim <= 0:
            raise LaunchConfigError(f"grid_dim must be positive, got {self.grid_dim}")
        if self.block_dim <= 0:
            raise LaunchConfigError(f"block_dim must be positive, got {self.block_dim}")
        if self.block_dim > spec.max_threads_per_block:
            raise LaunchConfigError(
                f"block_dim {self.block_dim} exceeds device limit "
                f"{spec.max_threads_per_block}"
            )

    @property
    def total_threads(self) -> int:
        return self.grid_dim * self.block_dim


@dataclass
class BlockContext:
    """Everything one simulated thread block can see."""

    spec: DeviceSpec
    config: LaunchConfig
    block_id: int
    counters: AccessCounters
    _shared_used: int = 0
    _shared_allocs: List[TrackedArray] = field(default_factory=list)
    sync_count: int = 0

    @property
    def nthreads(self) -> int:
        return self.config.block_dim

    @property
    def threads(self) -> np.ndarray:
        """Thread indices within the block (``threadIdx.x``)."""
        return np.arange(self.config.block_dim)

    @property
    def global_thread_ids(self) -> np.ndarray:
        """``blockIdx.x * blockDim.x + threadIdx.x``."""
        return self.block_id * self.config.block_dim + self.threads

    @property
    def warp_size(self) -> int:
        return self.spec.warp_size

    @property
    def num_warps(self) -> int:
        return (self.nthreads + self.warp_size - 1) // self.warp_size

    def warps(self) -> List[np.ndarray]:
        """Thread index ranges, one per warp."""
        return [
            self.threads[w * self.warp_size : (w + 1) * self.warp_size]
            for w in range(self.num_warps)
        ]

    # -- shared memory ------------------------------------------------------
    def alloc_shared(
        self, shape, dtype=np.float32, name: str = "shm", zero: bool = False
    ) -> TrackedArray:
        """Allocate block-local shared memory, enforcing the device budget."""
        arr = np.zeros(shape, dtype=dtype)
        new_total = self._shared_used + arr.nbytes
        if new_total > self.spec.shared_mem_per_block:
            raise SharedMemoryError(
                f"block {self.block_id} shared allocation of {arr.nbytes} B "
                f"pushes usage to {new_total} B, over the "
                f"{self.spec.shared_mem_per_block} B per-block limit"
            )
        self._shared_used = new_total
        tracked = TrackedArray(arr, MemSpace.SHARED, self.counters, name=name)
        self._shared_allocs.append(tracked)
        if zero:
            tracked.fill(0)
        return tracked

    @property
    def shared_bytes_used(self) -> int:
        return self._shared_used

    def free_shared(self, arr: TrackedArray) -> None:
        """Release a shared allocation (models the paper's L-overwrites-R
        buffer reuse when a kernel explicitly recycles space)."""
        if arr in self._shared_allocs:
            self._shared_allocs.remove(arr)
            self._shared_used -= arr.nbytes

    def syncthreads(self) -> None:
        """Barrier.  Functionally a no-op under block-serial simulation,
        but counted so tests can assert a kernel's synchronization shape."""
        self.sync_count += 1
