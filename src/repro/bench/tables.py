"""Per-table builders: Tables II, III and IV of the paper's evaluation.

Each builder simulates the relevant kernels at the paper's configuration
and returns the :class:`~repro.gpusim.profiler.SimReport` list plus a
rendered text table in the paper's format.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..apps import pcf as pcf_app
from ..apps import sdh as sdh_app
from ..core.kernels import make_kernel
from ..gpusim.calibration import Calibration, DEFAULT_CALIBRATION
from ..gpusim.profiler import SimReport, bandwidth_table, utilization_table
from ..gpusim.spec import DeviceSpec, TITAN_X
from .figures import PCF_BLOCK, PCF_RADIUS, SDH_BINS, SDH_BLOCK, SDH_BOX

#: Table II line-up (2-PCF kernels) with the paper's row labels.
TABLE2_KERNELS: Tuple[Tuple[str, str, str], ...] = (
    ("Naive", "naive", "register"),
    ("SHM-SHM", "shm-shm", "register"),
    ("Reg-SHM", "register-shm", "register"),
    ("Reg-ROC", "register-roc", "register"),
)

#: Tables III/IV line-up (SDH kernels).
TABLE34_KERNELS: Tuple[Tuple[str, str, str], ...] = (
    ("Naive", "naive", "global-atomic"),
    ("Naive-Out", "naive", "privatized-shm"),
    ("Reg-SHM-Out", "register-shm", "privatized-shm"),
    ("Reg-ROC-Out", "register-roc", "privatized-shm"),
)


def table2_pcf_utilization(
    n: int = 1_048_576,
    spec: DeviceSpec = TITAN_X,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> Tuple[List[SimReport], str]:
    """Table II: utilization of GPU resources for the 2-PCF kernels."""
    problem = pcf_app.make_problem(PCF_RADIUS)
    reports = []
    for display, inp, out in TABLE2_KERNELS:
        kernel = make_kernel(problem, inp, out, block_size=PCF_BLOCK, name=display)
        reports.append(kernel.simulate(n, spec=spec, calib=calib))
    return reports, utilization_table(reports)


def _sdh_reports(
    n: int,
    spec: DeviceSpec,
    calib: Calibration,
    lineup: Sequence[Tuple[str, str, str]] = TABLE34_KERNELS,
) -> List[SimReport]:
    problem = sdh_app.make_problem(
        SDH_BINS, SDH_BOX * math.sqrt(3), dims=3, box=SDH_BOX
    )
    reports = []
    for display, inp, out in lineup:
        kernel = make_kernel(problem, inp, out, block_size=SDH_BLOCK, name=display)
        reports.append(kernel.simulate(n, spec=spec, calib=calib))
    return reports


def table3_sdh_bandwidth(
    n: int = 512_000,
    spec: DeviceSpec = TITAN_X,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> Tuple[List[SimReport], str]:
    """Table III: achieved bandwidth per memory unit for SDH kernels."""
    reports = _sdh_reports(n, spec, calib)
    return reports, bandwidth_table(reports)


def table4_sdh_utilization(
    n: int = 512_000,
    spec: DeviceSpec = TITAN_X,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> Tuple[List[SimReport], str]:
    """Table IV: utilization of GPU resources for SDH kernels."""
    reports = _sdh_reports(n, spec, calib)
    return reports, utilization_table(reports)
