"""Benchmark harness: regenerates every table and figure of the paper's
evaluation section (see the experiment index in DESIGN.md)."""

from .figures import (
    PCF_BLOCK,
    PCF_RADIUS,
    SDH_BINS,
    SDH_BLOCK,
    SDH_BOX,
    fig2_pcf_kernels,
    fig4_sdh_kernels,
    fig5_output_size,
    fig7_load_balance,
    fig9_shuffle,
)
from .harness import FigureData, PAPER_SIZES, Series, crossover, geometric_sizes
from .tables import (
    TABLE2_KERNELS,
    TABLE34_KERNELS,
    table2_pcf_utilization,
    table3_sdh_bandwidth,
    table4_sdh_utilization,
)

__all__ = [
    "FigureData", "Series", "PAPER_SIZES", "geometric_sizes", "crossover",
    "fig2_pcf_kernels", "fig4_sdh_kernels", "fig5_output_size",
    "fig7_load_balance", "fig9_shuffle", "table2_pcf_utilization",
    "table3_sdh_bandwidth", "table4_sdh_utilization", "TABLE2_KERNELS",
    "TABLE34_KERNELS", "SDH_BINS", "SDH_BLOCK", "SDH_BOX", "PCF_BLOCK",
    "PCF_RADIUS",
]
