"""Per-figure series builders: the code that regenerates Figs. 2, 4, 5, 7
and 9 of the paper's evaluation.

Each builder runs the analytical simulation path at the paper's data
scales (functional execution at 10^6 points is the GPU's job, not the
simulator's) and returns a :class:`~repro.bench.harness.FigureData` whose
series carry the same labels the paper plots.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..apps import pcf as pcf_app
from ..apps import sdh as sdh_app
from ..core.kernels import PAPER_PCF, PAPER_SDH, make_kernel
from ..cpusim import CpuTwoBodyRunner
from ..gpusim.calibration import Calibration, DEFAULT_CALIBRATION
from ..gpusim.spec import DeviceSpec, TITAN_X
from .harness import FigureData, PAPER_SIZES

#: paper SDH configuration: ~2500 buckets ("tens of kilobytes"), B=256
SDH_BINS = 2500
SDH_BOX = 10.0
SDH_BLOCK = 256
#: paper 2-PCF configuration: B=1024 (from the model in their ref. [23])
PCF_BLOCK = 1024
PCF_RADIUS = 1.0


def _sdh_problem(bins: int = SDH_BINS):
    return sdh_app.make_problem(
        bins, SDH_BOX * math.sqrt(3), dims=3, box=SDH_BOX
    )


def fig2_pcf_kernels(
    sizes: Sequence[int] = PAPER_SIZES,
    spec: DeviceSpec = TITAN_X,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> FigureData:
    """Fig. 2: 2-PCF runtime for Naive / SHM-SHM / Register-SHM /
    Register-ROC (speedups over Naive come from ``speedup_over``)."""
    problem = pcf_app.make_problem(PCF_RADIUS)
    fig = FigureData(
        name="Fig. 2 — 2-PCF pairwise-stage kernels",
        x_label="atoms",
        x_values=list(sizes),
        notes=f"B={PCF_BLOCK}, uniform 3-D data, Titan X model",
    )
    for display, inp, out in PAPER_PCF:
        kernel = make_kernel(problem, inp, out, block_size=PCF_BLOCK, name=display)
        fig.add(
            display,
            [kernel.simulate(n, spec=spec, calib=calib).seconds for n in sizes],
        )
    return fig


def fig4_sdh_kernels(
    sizes: Sequence[int] = PAPER_SIZES,
    bins: int = SDH_BINS,
    spec: DeviceSpec = TITAN_X,
    calib: Calibration = DEFAULT_CALIBRATION,
    kernels: Optional[Sequence[tuple]] = None,
) -> FigureData:
    """Fig. 4: SDH runtime for the CPU baseline, the global-atomic-output
    kernels and the privatized (-Out) kernels."""
    problem = _sdh_problem(bins)
    fig = FigureData(
        name="Fig. 4 — SDH kernels vs CPU",
        x_label="atoms",
        x_values=list(sizes),
        notes=f"B={SDH_BLOCK}, {bins} buckets, uniform 3-D data",
    )
    cpu = CpuTwoBodyRunner(problem)
    fig.add("CPU", [cpu.simulate(n).seconds for n in sizes])
    lineup = kernels if kernels is not None else [
        k for k in PAPER_SDH if k[0] != "Shuffle"
    ]
    for display, inp, out in lineup:
        kernel = make_kernel(problem, inp, out, block_size=SDH_BLOCK, name=display)
        fig.add(
            display,
            [kernel.simulate(n, spec=spec, calib=calib).seconds for n in sizes],
        )
    return fig


def fig5_output_size(
    bucket_counts: Sequence[int] = (16, 64, 128, 256, 512, 1000, 1500, 2000,
                                    2500, 3000, 3200, 3500, 4000, 4400, 4800, 5000),
    n: int = 512_000,
    spec: DeviceSpec = TITAN_X,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> FigureData:
    """Fig. 5: Reg-ROC-Out runtime and occupancy vs SDH bucket count —
    runtime steps up as the shared-memory histogram squeezes occupancy,
    and degrades again at very small counts from atomic contention."""
    fig = FigureData(
        name="Fig. 5 — Reg-ROC-Out vs output size",
        x_label="buckets",
        x_values=[float(b) for b in bucket_counts],
        notes=f"N={n}, B={SDH_BLOCK}",
    )
    times, occs = [], []
    for bins in bucket_counts:
        problem = _sdh_problem(bins)
        kernel = make_kernel(
            problem, "register-roc", "privatized-shm",
            block_size=SDH_BLOCK, name="Reg-ROC-Out",
        )
        report = kernel.simulate(n, spec=spec, calib=calib)
        times.append(report.seconds)
        occs.append(report.occupancy * 100.0)
    fig.add("time", times)
    fig.add("occupancy %", occs)
    return fig


def fig7_load_balance(
    sizes: Sequence[int] = (614_400, 1_228_800, 1_843_200, 2_457_600, 3_072_000),
    spec: DeviceSpec = TITAN_X,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> FigureData:
    """Fig. 7: intra-block pass runtime, plain Register-SHM vs the cyclic
    load-balanced schedule (expect a 12-13% gain at B=256)."""
    problem = _sdh_problem()
    plain = make_kernel(
        problem, "register-shm", "privatized-shm", block_size=SDH_BLOCK,
        name="Register-SHM",
    )
    balanced = make_kernel(
        problem, "register-shm", "privatized-shm", block_size=SDH_BLOCK,
        load_balanced=True, name="Register-SHM-LB",
    )
    fig = FigureData(
        name="Fig. 7 — intra-block load balancing",
        x_label="atoms",
        x_values=list(sizes),
        notes=f"intra-block pass only, B={SDH_BLOCK}",
    )
    fig.add(
        "Register-SHM",
        [plain.simulate_intra(n, spec=spec, calib=calib).seconds for n in sizes],
    )
    fig.add(
        "Register-SHM-LB",
        [balanced.simulate_intra(n, spec=spec, calib=calib).seconds for n in sizes],
    )
    return fig


def fig9_shuffle(
    sizes: Sequence[int] = PAPER_SIZES,
    spec: DeviceSpec = TITAN_X,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> FigureData:
    """Fig. 9: shuffle tiling vs Reg-SHM-Out / Reg-ROC-Out and the CPU —
    shuffle should run within a few percent of the cache-tiled kernels."""
    problem = _sdh_problem()
    fig = FigureData(
        name="Fig. 9 — tiling with shuffle instructions",
        x_label="atoms",
        x_values=list(sizes),
        notes=f"B={SDH_BLOCK}, {SDH_BINS} buckets",
    )
    cpu = CpuTwoBodyRunner(problem)
    fig.add("CPU", [cpu.simulate(n).seconds for n in sizes])
    for display, inp, out in PAPER_SDH:
        if display not in ("Reg-SHM-Out", "Reg-ROC-Out", "Shuffle"):
            continue
        kernel = make_kernel(problem, inp, out, block_size=SDH_BLOCK, name=display)
        fig.add(
            display,
            [kernel.simulate(n, spec=spec, calib=calib).seconds for n in sizes],
        )
    return fig
