"""Benchmark harness utilities: sweeps, series and table rendering.

Every figure/table builder in :mod:`repro.bench.figures` and
:mod:`repro.bench.tables` returns plain data (dicts of series) plus a
``render`` helper, so the pytest benchmarks, EXPERIMENTS.md generation and
the examples all consume the same rows the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class Series:
    """One plotted curve: a label and y-values over a shared x-axis."""

    label: str
    values: List[float]

    def ratio_to(self, other: "Series") -> List[float]:
        if len(self.values) != len(other.values):
            raise ValueError(
                f"series lengths differ: {len(self.values)} vs {len(other.values)}"
            )
        return [o / s if s else float("inf") for s, o in zip(self.values, other.values)]


@dataclass
class FigureData:
    """A reproduced figure: x-axis plus named series (like the paper's
    two-panel time/speedup plots)."""

    name: str
    x_label: str
    x_values: List[float]
    series: Dict[str, Series] = field(default_factory=dict)
    notes: str = ""

    def add(self, label: str, values: Sequence[float]) -> None:
        if len(values) != len(self.x_values):
            raise ValueError(
                f"{label}: {len(values)} values for {len(self.x_values)} x points"
            )
        self.series[label] = Series(label, list(values))

    def speedup_over(self, baseline: str) -> Dict[str, List[float]]:
        """Per-series speedups relative to ``baseline`` (paper's right
        panels)."""
        base = self.series[baseline]
        return {
            label: s.ratio_to(base) if label != baseline else [1.0] * len(base.values)
            for label, s in self.series.items()
        }

    def render(self, unit: str = "s", precision: int = 4) -> str:
        """Fixed-width text table of the figure's data."""
        labels = list(self.series)
        header = [self.x_label] + [f"{l} ({unit})" for l in labels]
        rows = [header]
        for i, x in enumerate(self.x_values):
            rows.append(
                [f"{x:g}"]
                + [f"{self.series[l].values[i]:.{precision}g}" for l in labels]
            )
        widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
        out = [f"== {self.name} =="]
        if self.notes:
            out.append(self.notes)
        for r_i, r in enumerate(rows):
            out.append("  ".join(cell.rjust(widths[c]) for c, cell in enumerate(r)))
            if r_i == 0:
                out.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        return "\n".join(out)


def geometric_sizes(start: int, stop: int, points: int) -> List[int]:
    """Geometrically spaced problem sizes, rounded to multiples of 1024."""
    import numpy as np

    raw = np.geomspace(start, stop, points)
    return [int(round(v / 1024) * 1024) or 1024 for v in raw]


#: the paper's data-size sweep ("size ranging from 512 to 2 million";
#: plots span 100k..1.6M-3M) — a compact representative grid.
PAPER_SIZES: tuple = (102_400, 204_800, 409_600, 819_200, 1_228_800, 1_638_400)


def crossover(xs: Sequence[float], a: Sequence[float], b: Sequence[float]) -> Optional[float]:
    """x where series a first drops below series b (None if never) —
    used to report knee/crossover positions in EXPERIMENTS.md."""
    for x, va, vb in zip(xs, a, b):
        if va < vb:
            return x
    return None
