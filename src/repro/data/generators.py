"""Synthetic workload generators.

The paper evaluates on uniformly distributed particle datasets (Section
IV-B); the example applications add richer but still synthetic inputs —
molecular-liquid configurations for RDF, clustered galaxy mocks for the
correlation function, user/item feature vectors for the recommender join.
All generators are seeded and deterministic.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def uniform_points(
    n: int, dims: int = 3, box: float = 10.0, seed: int = 0
) -> np.ndarray:
    """Uniform points in a ``[0, box]^dims`` region — the paper's dataset."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if dims <= 0:
        raise ValueError(f"dims must be positive, got {dims}")
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, box, size=(n, dims))


def gaussian_clusters(
    n: int,
    dims: int = 3,
    n_clusters: int = 8,
    box: float = 10.0,
    spread: float = 0.4,
    seed: int = 0,
) -> np.ndarray:
    """Mixture-of-Gaussians point set (clustered spatial data)."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, box, size=(n_clusters, dims))
    labels = rng.integers(0, n_clusters, size=n)
    pts = centers[labels] + rng.normal(0.0, spread, size=(n, dims))
    return np.clip(pts, 0.0, box)


def liquid_configuration(
    n: int, density: float = 0.8, jitter: float = 0.08, seed: int = 0
) -> Tuple[np.ndarray, float]:
    """A molecular-liquid-like 3D configuration: particles near cubic
    lattice sites with thermal jitter, the structure that gives an RDF its
    characteristic shell peaks.  Returns (points, box_edge)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    rng = np.random.default_rng(seed)
    per_edge = int(np.ceil(n ** (1.0 / 3.0)))
    spacing = (1.0 / density) ** (1.0 / 3.0)
    box = per_edge * spacing
    grid = np.stack(
        np.meshgrid(*[np.arange(per_edge)] * 3, indexing="ij"), axis=-1
    ).reshape(-1, 3)
    sites = (grid[:n] + 0.5) * spacing
    pts = sites + rng.normal(0.0, jitter * spacing, size=sites.shape)
    return np.mod(pts, box), float(box)


def galaxy_mock(
    n: int,
    box: float = 100.0,
    clustered_fraction: float = 0.45,
    n_halos: Optional[int] = None,
    halo_scale: float = 1.5,
    seed: int = 0,
) -> np.ndarray:
    """A toy galaxy catalogue: a uniform field plus NFW-ish halo clumps,
    giving the 2-point correlation function a positive clustering signal."""
    rng = np.random.default_rng(seed)
    n_cl = int(n * clustered_fraction)
    n_bg = n - n_cl
    halos = n_halos or max(4, n // 400)
    centers = rng.uniform(0.0, box, size=(halos, 3))
    which = rng.integers(0, halos, size=n_cl)
    # heavy-tailed radial profile around each halo centre
    radii = halo_scale * rng.exponential(1.0, size=n_cl)[:, None]
    dirs = rng.normal(size=(n_cl, 3))
    dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
    clustered = centers[which] + radii * dirs
    background = rng.uniform(0.0, box, size=(n_bg, 3))
    pts = np.vstack([clustered, background])
    return np.mod(pts, box)


def feature_vectors(
    n: int, dims: int = 16, sparsity: float = 0.0, seed: int = 0
) -> np.ndarray:
    """Non-negative feature/profile vectors (users, items, sequences)."""
    rng = np.random.default_rng(seed)
    v = rng.gamma(2.0, 1.0, size=(n, dims))
    if sparsity > 0:
        v *= rng.random(size=v.shape) >= sparsity
    return v


def join_values(
    n: int, duplicates: float = 0.1, scale: float = 1000.0, seed: int = 0
) -> np.ndarray:
    """1-D join keys with a controllable duplicate rate (band-join input)."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.0, scale, size=n)
    dup = rng.random(n) < duplicates
    if dup.any():
        base[dup] = rng.choice(base[~dup] if (~dup).any() else base, size=dup.sum())
    return base


def sdh_bucket_probabilities(
    bins: int,
    box: float = 10.0,
    dims: int = 3,
    n_sample: int = 4096,
    seed: int = 7,
) -> np.ndarray:
    """Empirical distance-bucket distribution for uniform data in a box.

    Feeds the analytical atomic-contention model: the SDH of uniform data
    concentrates mass mid-range, which is what drives Fig. 5's small-bucket
    contention penalty.  Deterministic (fixed seed), Monte-Carlo estimated.
    """
    rng = np.random.default_rng(seed)
    a = rng.uniform(0.0, box, size=(n_sample, dims))
    b = rng.uniform(0.0, box, size=(n_sample, dims))
    d = np.linalg.norm(a - b, axis=1)
    width = box * np.sqrt(dims) / bins
    idx = np.minimum((d / width).astype(np.int64), bins - 1)
    counts = np.bincount(idx, minlength=bins).astype(np.float64)
    probs = counts / counts.sum()
    # smooth the empty tail slightly so no bucket has exactly zero mass
    probs = (probs + 1e-9) / (probs + 1e-9).sum()
    return probs
