"""Synthetic dataset generators for tests, examples and benchmarks."""

from .generators import (
    feature_vectors,
    galaxy_mock,
    gaussian_clusters,
    join_values,
    liquid_configuration,
    sdh_bucket_probabilities,
    uniform_points,
)

__all__ = [
    "uniform_points",
    "gaussian_clusters",
    "liquid_configuration",
    "galaxy_mock",
    "feature_vectors",
    "join_values",
    "sdh_bucket_probabilities",
]
